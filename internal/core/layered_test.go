package core

import (
	"fmt"
	"math"
	"testing"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

// Engine-level differential for the versioned store: a run against a
// snapshot carrying delta overlays must produce bit-identical vertex
// properties and work tallies to the same run against a graph freshly built
// from the equivalent edge set — across every kernel mode, both vector
// representations, both scatter directions, and the boxed dispatch path.

// layeredBatches returns update batches that force every overlay shape:
// inserts into existing and brand-new columns, upserts, entry deletes,
// whole-column tombstones, and resurrection of a deleted edge.
func layeredBatches(n uint32) [][]graph.Update[float32] {
	hub := uint32(1) // RMAT quadrant bias makes low ids the heavy columns
	return [][]graph.Update[float32]{
		{
			{Src: hub, Dst: n - 1, Val: 3},
			{Src: n - 1, Dst: hub, Val: 4},
			{Src: 0, Dst: 1, Val: 5}, // likely upsert of an existing edge
			{Src: n - 2, Dst: n - 3, Val: 6},
		},
		{
			{Src: hub, Dst: n - 1, Del: true},
			{Src: 2, Dst: 2, Del: true},
			{Src: 7, Dst: 9, Val: 8},
			{Src: 7, Dst: 9, Del: true},
			{Src: 7, Dst: 9, Val: 9}, // delete-then-reinsert within one batch
		},
	}
}

// applyBrute applies batches to a normalized triple list by brute force,
// preserving first-occurrence order for survivors, appending new edges.
func applyBrute(coo *sparse.COO[float32], batches [][]graph.Update[float32]) *sparse.COO[float32] {
	type key struct{ r, c uint32 }
	live := map[key]float32{}
	var order []key
	for _, t := range coo.Entries {
		k := key{t.Row, t.Col}
		live[k] = t.Val
		order = append(order, k)
	}
	for _, b := range batches {
		for _, u := range b {
			k := key{u.Src, u.Dst}
			if u.Del {
				delete(live, k)
				continue
			}
			if _, ok := live[k]; !ok {
				order = append(order, k)
			}
			live[k] = u.Val
		}
	}
	out := sparse.NewCOO[float32](coo.NRows, coo.NCols)
	for _, k := range order {
		if v, ok := live[k]; ok {
			out.Add(k.r, k.c, v)
			delete(live, k)
		}
	}
	return out
}

func initDiffState(g *graph.Graph[float32, float32], roots []uint32) {
	g.SetAllProps(inf)
	g.ClearActive()
	for _, r := range roots {
		g.SetProp(r, 0)
		g.SetActive(r)
	}
}

func TestLayeredRunsMatchFreshBuild(t *testing.T) {
	base := gen.RMAT(gen.RMATOptions{Scale: 9, EdgeFactor: 8, Seed: 11, MaxWeight: 9})
	base.SortRowMajor()
	base.DedupKeepFirst()
	n := base.NRows
	batches := layeredBatches(n)

	opts := graph.Options{Partitions: 6, Directions: graph.Both, CompactFraction: -1}
	store, err := graph.NewStore[float32, float32](base.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := store.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	snap := store.Acquire()
	defer snap.Release()
	if snap.Graph().OverlayNNZ() == 0 {
		t.Fatal("test is vacuous: no overlay survived the batches")
	}

	fresh, err := graph.NewFromCOO[float32, float32](applyBrute(base, batches), opts)
	if err != nil {
		t.Fatal(err)
	}

	roots := []uint32{0, n - 1}
	programs := []struct {
		name string
		run  func(g *graph.Graph[float32, float32], cfg Config) Stats
	}{
		{"sssp_out", func(g *graph.Graph[float32, float32], cfg Config) Stats {
			s, _ := Run[float32, float32, float32, float32](g, ssspProg{}, cfg)
			return s
		}},
		{"sssp_in", func(g *graph.Graph[float32, float32], cfg Config) Stats {
			s, _ := Run[float32, float32, float32, float32](g, inDir{}, cfg)
			return s
		}},
		{"sssp_both", func(g *graph.Graph[float32, float32], cfg Config) Stats {
			s, _ := Run[float32, float32, float32, float32](g, bothDir{}, cfg)
			return s
		}},
	}
	configs := []Config{
		{Mode: Pull},
		{Mode: Push},
		{Mode: Auto},
		{Mode: Pull, Vector: Sorted},
		{Mode: Push, Vector: Sorted},
		{Dispatch: Boxed},
		{Dispatch: Boxed, Vector: Sorted},
	}
	for _, prog := range programs {
		// Reference: the fresh build under forced pull.
		initDiffState(fresh, roots)
		refStats := prog.run(fresh, Config{Mode: Pull, MaxIterations: 40})
		refProps := append([]float32(nil), fresh.Props()...)
		for _, cfg := range configs {
			cfg.MaxIterations = 40
			name := fmt.Sprintf("%s/mode_%s_vec_%d_disp_%d", prog.name, cfg.Mode, cfg.Vector, cfg.Dispatch)
			// Each run takes a fresh view of the pinned snapshot: shared
			// immutable structure, private run state.
			g := snap.View()
			initDiffState(g, roots)
			stats := prog.run(g, cfg)
			for v, want := range refProps {
				if got := g.Props()[v]; math.Float32bits(got) != math.Float32bits(want) {
					t.Fatalf("%s: prop[%d] = %v (%x), fresh pull = %v (%x)",
						name, v, got, math.Float32bits(got), want, math.Float32bits(want))
				}
			}
			if cfg.Dispatch != Boxed {
				if stats.Iterations != refStats.Iterations ||
					stats.MessagesSent != refStats.MessagesSent ||
					stats.EdgesProcessed != refStats.EdgesProcessed ||
					stats.Applies != refStats.Applies {
					t.Errorf("%s: stats diverge: %+v vs fresh %+v", name, stats, refStats)
				}
			}
		}
	}
}

// TestLayeredSpMVMatchesFreshBuild covers the single-shot SpMV seam over an
// overlay snapshot in every mode and vector kind.
func TestLayeredSpMVMatchesFreshBuild(t *testing.T) {
	base := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 6, Seed: 7, MaxWeight: 5})
	base.SortRowMajor()
	base.DedupKeepFirst()
	n := base.NRows
	batches := layeredBatches(n)

	opts := graph.Options{Partitions: 5, CompactFraction: -1}
	store, err := graph.NewStore[float32, float32](base.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := store.ApplyEdges(b); err != nil {
			t.Fatal(err)
		}
	}
	snap := store.Acquire()
	defer snap.Release()
	fresh, err := graph.NewFromCOO[float32, float32](applyBrute(base, batches), opts)
	if err != nil {
		t.Fatal(err)
	}

	x := sparse.NewVector[float32](int(n))
	for v := uint32(0); v < n; v += 3 {
		x.Set(v, float32(v%11))
	}
	ref := SpMV[float32, float32, float32, float32](fresh, x, ssspProg{}, Config{Mode: Pull})
	for _, cfg := range []Config{{Mode: Pull}, {Mode: Push}, {Mode: Auto}, {Mode: Pull, Vector: Sorted}, {Mode: Push, Vector: Sorted}} {
		y := SpMV[float32, float32, float32, float32](snap.View(), x, ssspProg{}, cfg)
		if y.NNZ() != ref.NNZ() {
			t.Fatalf("mode %s vec %d: nnz %d vs %d", cfg.Mode, cfg.Vector, y.NNZ(), ref.NNZ())
		}
		ref.Iterate(func(i uint32, want float32) {
			got, ok := y.GetChecked(i)
			if !ok || math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("mode %s vec %d: y[%d] = %v,%v want %v", cfg.Mode, cfg.Vector, i, got, ok, want)
			}
		})
	}
}
