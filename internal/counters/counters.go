// Package counters is the software substitute for the hardware performance
// counters behind Figure 6 of the paper (instructions, stall cycles, read
// bandwidth, IPC measured with the Xeon PMU). No PMU access exists in
// portable Go, so each engine reports exact tallies of the work it did and
// this package maps them onto the same four axes:
//
//	instructions  → WorkItems: operations executed, with boxed (interface-
//	                dispatched, allocating) operations weighted by
//	                BoxedOpWeight since each costs extra instructions for
//	                allocation, copy and dynamic dispatch;
//	stall cycles  → RandomTouches: memory accesses with no spatial locality
//	                (per-edge property lookups, hash probes, pointer chases)
//	                — on the paper's machine as here, random DRAM touches
//	                are what stall the pipeline;
//	read bandwidth→ StreamedBytes / WallSeconds: bytes moved through
//	                sequential scans of compressed structures;
//	IPC           → WorkItems / WallSeconds, work retired per unit time.
//
// The plot normalizes every framework to GraphMat exactly as the paper does,
// so only relative magnitudes matter.
package counters

// BoxedOpWeight is the instruction-count multiplier for operations that
// cross an interface{} boundary (allocation + copy + dynamic dispatch versus
// an inlined call).
const BoxedOpWeight = 4

// Set is one run's counter record.
type Set struct {
	WorkItems     int64
	RandomTouches int64
	StreamedBytes int64
	WallSeconds   float64
}

// FromEngine maps the GraphMat engine's exact work tallies onto the counter
// proxies — the single definition shared by the Figure 6 bench harness and
// the analytics server's /stats endpoint. The arguments are the core.Stats
// fields (passed individually so this leaf package needs no engine import):
// every message is one work item, every edge traversal a process+reduce pair
// with one random destination touch, every apply a random property touch,
// and probes/messages/edges stream 8 bytes each through the compressed
// structures.
func FromEngine(messagesSent, edgesProcessed, applies, columnsProbed int64, wall float64) Set {
	return Set{
		WorkItems:     messagesSent + 2*edgesProcessed + applies + columnsProbed,
		RandomTouches: edgesProcessed + applies,
		StreamedBytes: 8*edgesProcessed + 8*columnsProbed + 8*messagesSent,
		WallSeconds:   wall,
	}
}

// Add accumulates another record (multi-phase runs).
func (s *Set) Add(o Set) {
	s.WorkItems += o.WorkItems
	s.RandomTouches += o.RandomTouches
	s.StreamedBytes += o.StreamedBytes
	s.WallSeconds += o.WallSeconds
}

// ReadBandwidth returns the streamed-bytes rate (the Figure 6 "read
// bandwidth" axis).
func (s Set) ReadBandwidth() float64 {
	if s.WallSeconds == 0 {
		return 0
	}
	return float64(s.StreamedBytes) / s.WallSeconds
}

// WorkRate returns work items retired per second (the Figure 6 "IPC" axis).
func (s Set) WorkRate() float64 {
	if s.WallSeconds == 0 {
		return 0
	}
	return float64(s.WorkItems) / s.WallSeconds
}

// Ratios returns the four Figure 6 axes of s normalized to base, in the
// paper's order: instructions, stall cycles, read bandwidth, IPC. Lower is
// better for the first two, higher for the last two.
func (s Set) Ratios(base Set) [4]float64 {
	div := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return [4]float64{
		div(float64(s.WorkItems), float64(base.WorkItems)),
		div(float64(s.RandomTouches), float64(base.RandomTouches)),
		div(s.ReadBandwidth(), base.ReadBandwidth()),
		div(s.WorkRate(), base.WorkRate()),
	}
}

// AxisNames are the Figure 6 series labels.
var AxisNames = [4]string{"Instructions", "Stall cycles", "Read Bandwidth", "IPC"}
