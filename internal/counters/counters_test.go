package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdd(t *testing.T) {
	a := Set{WorkItems: 1, RandomTouches: 2, StreamedBytes: 3, WallSeconds: 0.5}
	b := Set{WorkItems: 10, RandomTouches: 20, StreamedBytes: 30, WallSeconds: 1.5}
	a.Add(b)
	if a.WorkItems != 11 || a.RandomTouches != 22 || a.StreamedBytes != 33 || a.WallSeconds != 2 {
		t.Errorf("Add = %+v", a)
	}
}

func TestRates(t *testing.T) {
	s := Set{WorkItems: 100, StreamedBytes: 400, WallSeconds: 2}
	if s.ReadBandwidth() != 200 {
		t.Errorf("ReadBandwidth = %v", s.ReadBandwidth())
	}
	if s.WorkRate() != 50 {
		t.Errorf("WorkRate = %v", s.WorkRate())
	}
	var zero Set
	if zero.ReadBandwidth() != 0 || zero.WorkRate() != 0 {
		t.Error("zero WallSeconds must not divide by zero")
	}
}

func TestRatiosSelfIsOne(t *testing.T) {
	s := Set{WorkItems: 7, RandomTouches: 11, StreamedBytes: 13, WallSeconds: 0.3}
	r := s.Ratios(s)
	for i, x := range r {
		if math.Abs(x-1) > 1e-12 {
			t.Errorf("axis %s self-ratio = %v", AxisNames[i], x)
		}
	}
}

func TestRatiosDirection(t *testing.T) {
	base := Set{WorkItems: 100, RandomTouches: 100, StreamedBytes: 1000, WallSeconds: 1}
	slow := Set{WorkItems: 400, RandomTouches: 300, StreamedBytes: 1000, WallSeconds: 4}
	r := slow.Ratios(base)
	if r[0] != 4 { // 4x instructions
		t.Errorf("instructions ratio = %v", r[0])
	}
	if r[1] != 3 { // 3x stalls
		t.Errorf("stall ratio = %v", r[1])
	}
	if r[2] != 0.25 { // same bytes over 4x the time
		t.Errorf("bandwidth ratio = %v", r[2])
	}
	if r[3] != 1 { // 4x work over 4x time
		t.Errorf("IPC ratio = %v", r[3])
	}
}

func TestRatiosZeroBase(t *testing.T) {
	s := Set{WorkItems: 5, WallSeconds: 1}
	r := s.Ratios(Set{})
	for i, x := range r {
		if x != 0 {
			t.Errorf("axis %d against zero base = %v, want 0", i, x)
		}
	}
}

// Property: scaling a set's counts and time by the same factor leaves the
// IPC proxy unchanged and scales bandwidth by 1.
func TestQuickScaleInvariance(t *testing.T) {
	f := func(wRaw, bRaw uint16, kRaw uint8) bool {
		w, b := int64(wRaw)+1, int64(bRaw)+1
		k := int64(kRaw%7) + 2
		s1 := Set{WorkItems: w, StreamedBytes: b, WallSeconds: 1}
		s2 := Set{WorkItems: w * k, StreamedBytes: b * k, WallSeconds: float64(k)}
		return math.Abs(s1.WorkRate()-s2.WorkRate()) < 1e-9 &&
			math.Abs(s1.ReadBandwidth()-s2.ReadBandwidth()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
