package gen

import (
	"graphmat/internal/sparse"
)

// RMATParams are the recursive-matrix quadrant probabilities of the
// Graph500 generator [23]. D is implied (1-A-B-C).
type RMATParams struct {
	A, B, C float64
}

// The paper's three RMAT parameter sets (§5.1).
var (
	// RMATGraph500 is used for PageRank, BFS and SSSP graphs
	// ("A = 0.57, B=C= 0.19", following [27]).
	RMATGraph500 = RMATParams{A: 0.57, B: 0.19, C: 0.19}
	// RMATTriangle is used for triangle counting
	// ("A = 0.45, B=C =0.15 for Triangle Counting as in [27]").
	RMATTriangle = RMATParams{A: 0.45, B: 0.15, C: 0.15}
	// RMATSSSP24 is the scale-24 SSSP graph's parameter set
	// ("parameters A=0.50, B=C=0.10 to match with that used in [13, 24]").
	RMATSSSP24 = RMATParams{A: 0.50, B: 0.10, C: 0.10}
)

// RMATOptions configures RMAT generation.
type RMATOptions struct {
	Scale      int        // vertices = 2^Scale
	EdgeFactor int        // edges = EdgeFactor * vertices (Graph500 uses 16)
	Params     RMATParams // quadrant probabilities; zero value means RMATGraph500
	Seed       uint64
	// MaxWeight, when > 0, assigns each edge a uniform integer weight in
	// [1, MaxWeight]; otherwise weight 1.
	MaxWeight int
	// NoPermute skips the vertex relabeling pass. Graph500 shuffles vertex
	// ids so that the heavy vertices are not clustered at low ids; tests use
	// NoPermute for readability.
	NoPermute bool
}

// RMAT generates a directed RMAT graph as adjacency triples (Row = src,
// Col = dst). Duplicate edges and self-loops are possible, matching the raw
// Graph500 stream; the dataset preprocessing decides what to do with them
// (the paper removes self-loops and the graph build deduplicates).
func RMAT(opt RMATOptions) *sparse.COO[float32] {
	if opt.Params == (RMATParams{}) {
		opt.Params = RMATGraph500
	}
	if opt.EdgeFactor <= 0 {
		opt.EdgeFactor = 16
	}
	n := uint32(1) << opt.Scale
	m := int(n) * opt.EdgeFactor
	rng := NewRNG(opt.Seed)
	coo := sparse.NewCOO[float32](n, n)
	coo.Entries = make([]sparse.Triple[float32], 0, m)

	a, b, c := opt.Params.A, opt.Params.B, opt.Params.C
	ab := a + b
	abc := a + b + c
	for i := 0; i < m; i++ {
		var src, dst uint32
		for level := 0; level < opt.Scale; level++ {
			u := rng.Float64()
			bit := uint32(1) << (opt.Scale - 1 - level)
			switch {
			case u < a:
				// top-left quadrant: no bits set
			case u < ab:
				dst |= bit
			case u < abc:
				src |= bit
			default:
				src |= bit
				dst |= bit
			}
		}
		w := float32(1)
		if opt.MaxWeight > 0 {
			w = float32(1 + rng.Intn(opt.MaxWeight))
		}
		coo.Add(src, dst, w)
	}

	if !opt.NoPermute {
		perm := rng.Perm(n)
		for i := range coo.Entries {
			coo.Entries[i].Row = perm[coo.Entries[i].Row]
			coo.Entries[i].Col = perm[coo.Entries[i].Col]
		}
	}
	return coo
}

// ErdosRenyi generates a directed G(n, m) graph with m edges drawn uniformly
// (duplicates possible), weights uniform in [1, maxWeight] when maxWeight>0.
func ErdosRenyi(n uint32, m int, maxWeight int, seed uint64) *sparse.COO[float32] {
	rng := NewRNG(seed)
	coo := sparse.NewCOO[float32](n, n)
	coo.Entries = make([]sparse.Triple[float32], 0, m)
	for i := 0; i < m; i++ {
		w := float32(1)
		if maxWeight > 0 {
			w = float32(1 + rng.Intn(maxWeight))
		}
		coo.Add(rng.Uint32n(n), rng.Uint32n(n), w)
	}
	return coo
}
