package gen

import (
	"graphmat/internal/sparse"
)

// EdgeOp is one generated edge mutation. It mirrors graph.Update[float32]
// field for field but is defined here so the generator stays importable from
// graph's own tests (gen must not depend on graph).
type EdgeOp struct {
	Src, Dst uint32
	Weight   float32
	Del      bool
}

// UpdateOptions configures the edge-update-stream generator.
type UpdateOptions struct {
	// Count is the number of updates to emit.
	Count int
	// DeleteFraction is the share of updates that delete an existing base
	// edge; the rest are inserts/upserts. 0 means 0.3.
	DeleteFraction float64
	// MaxWeight draws insert weights uniformly from [1, MaxWeight]; 0 means
	// unweighted (weight 1).
	MaxWeight int
	// Seed seeds the deterministic generator.
	Seed uint64
}

// Updates generates a realistic edge-update stream against a base graph:
// deletes sample existing base edges (so they hit real columns, hubs
// included, with the base's degree bias), inserts sample fresh endpoint
// pairs uniformly, and a small slice of adversarial records — self-loops,
// repeated keys, delete-then-reinsert churn — keeps downstream consumers
// (update benchmarks, fuzz corpora, differential suites) honest about batch
// semantics. The base is read, not modified. Output order is the stream
// order; batch consumers cut it wherever they like.
func Updates(base *sparse.COO[float32], opt UpdateOptions) []EdgeOp {
	if opt.Count <= 0 {
		return nil
	}
	delFrac := opt.DeleteFraction
	if delFrac == 0 {
		delFrac = 0.3
	}
	rng := NewRNG(opt.Seed ^ 0x75bcd15)
	n := base.NRows
	weight := func() float32 {
		if opt.MaxWeight <= 0 {
			return 1
		}
		return float32(rng.Intn(opt.MaxWeight) + 1)
	}
	ups := make([]EdgeOp, 0, opt.Count)
	for len(ups) < opt.Count {
		switch {
		case len(base.Entries) > 0 && rng.Float64() < delFrac:
			t := base.Entries[rng.Intn(len(base.Entries))]
			ups = append(ups, EdgeOp{Src: t.Row, Dst: t.Col, Del: true})
		case rng.Float64() < 0.02:
			// Adversarial slice: self-loops and same-key churn
			// (insert → delete → reinsert of one fresh pair).
			v := rng.Uint32n(n)
			ups = append(ups, EdgeOp{Src: v, Dst: v, Weight: weight()})
			if len(ups) < opt.Count {
				w := rng.Uint32n(n)
				ups = append(ups,
					EdgeOp{Src: v, Dst: w, Weight: weight()},
					EdgeOp{Src: v, Dst: w, Del: true},
					EdgeOp{Src: v, Dst: w, Weight: weight()})
				ups = ups[:min(len(ups), opt.Count)]
			}
		default:
			ups = append(ups, EdgeOp{Src: rng.Uint32n(n), Dst: rng.Uint32n(n), Weight: weight()})
		}
	}
	return ups
}
