package gen

import (
	"testing"
)

func TestUpdatesGenerator(t *testing.T) {
	base := RMAT(RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 3, MaxWeight: 10})
	nnzBefore := base.NNZ()
	ups := Updates(base, UpdateOptions{Count: 500, DeleteFraction: 0.4, MaxWeight: 9, Seed: 1})
	if len(ups) != 500 {
		t.Fatalf("got %d updates, want 500", len(ups))
	}
	if base.NNZ() != nnzBefore {
		t.Fatalf("generator mutated the base graph")
	}
	baseEdges := map[[2]uint32]bool{}
	for _, e := range base.Entries {
		baseEdges[[2]uint32{e.Row, e.Col}] = true
	}
	inserted := map[[2]uint32]bool{}
	dels, loops := 0, 0
	for _, u := range ups {
		if u.Src >= base.NRows || u.Dst >= base.NCols {
			t.Fatalf("update (%d,%d) outside %dx%d base", u.Src, u.Dst, base.NRows, base.NCols)
		}
		if u.Del {
			dels++
			// Deletes must target real edges — base edges or ones the
			// stream itself inserted — so the stream exercises live
			// columns instead of no-op paths.
			if !baseEdges[[2]uint32{u.Src, u.Dst}] && !inserted[[2]uint32{u.Src, u.Dst}] {
				t.Fatalf("delete (%d,%d) references no known edge", u.Src, u.Dst)
			}
		} else {
			if u.Weight < 1 || u.Weight > 9 {
				t.Fatalf("insert weight %v outside [1,9]", u.Weight)
			}
			if u.Src == u.Dst {
				loops++
			}
			inserted[[2]uint32{u.Src, u.Dst}] = true
		}
	}
	if dels == 0 || dels == len(ups) {
		t.Fatalf("delete mix degenerate: %d of %d", dels, len(ups))
	}
	if float64(dels) < 0.25*float64(len(ups)) || float64(dels) > 0.55*float64(len(ups)) {
		t.Errorf("delete fraction %d/%d far from requested 0.4", dels, len(ups))
	}
	if loops == 0 {
		t.Errorf("adversarial slice emitted no self-loops in 500 updates")
	}

	// Determinism: same seed, same stream; different seed, different stream.
	again := Updates(base, UpdateOptions{Count: 500, DeleteFraction: 0.4, MaxWeight: 9, Seed: 1})
	for i := range ups {
		if ups[i] != again[i] {
			t.Fatalf("stream not deterministic at %d: %+v vs %+v", i, ups[i], again[i])
		}
	}
	other := Updates(base, UpdateOptions{Count: 500, DeleteFraction: 0.4, MaxWeight: 9, Seed: 2})
	same := 0
	for i := range ups {
		if ups[i] == other[i] {
			same++
		}
	}
	if same == len(ups) {
		t.Fatal("different seeds produced identical streams")
	}
}
