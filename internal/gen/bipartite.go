package gen

import (
	"math"

	"graphmat/internal/sparse"
)

// BipartiteOptions configures the synthetic ratings generator used for
// collaborative filtering. The paper uses "the synthetic bipartite graph
// generator as described in [27] to generate graphs similar in distribution
// to the real-world Netflix challenge graph": users and items with power-law
// popularity, integer ratings.
type BipartiteOptions struct {
	Users, Items uint32
	Ratings      int
	// ItemSkew is the Zipf exponent of item popularity (Netflix-like
	// catalogs are heavily skewed). 0 means 0.6.
	ItemSkew float64
	// MaxRating is the rating scale (Netflix uses 1..5). 0 means 5.
	MaxRating int
	Seed      uint64
}

// Bipartite generates a ratings graph on Users+Items vertices: user vertices
// are ids [0, Users), item vertices [Users, Users+Items). Each rating is one
// directed edge user→item carrying the rating value; graph preprocessing
// symmetrizes it so factor updates flow both ways (the CF algorithm's
// bipartite requirement, §5.1).
func Bipartite(opt BipartiteOptions) *sparse.COO[float32] {
	if opt.ItemSkew == 0 {
		opt.ItemSkew = 0.6
	}
	if opt.MaxRating == 0 {
		opt.MaxRating = 5
	}
	rng := NewRNG(opt.Seed)
	n := opt.Users + opt.Items
	coo := sparse.NewCOO[float32](n, n)
	coo.Entries = make([]sparse.Triple[float32], 0, opt.Ratings)

	// Zipf sampling over items via inverse-CDF on precomputed cumulative
	// weights: item k has weight (k+1)^-skew.
	cum := make([]float64, opt.Items)
	total := 0.0
	for k := uint32(0); k < opt.Items; k++ {
		total += math.Pow(float64(k+1), -opt.ItemSkew)
		cum[k] = total
	}
	sampleItem := func() uint32 {
		u := rng.Float64() * total
		lo, hi := 0, len(cum)
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= len(cum) {
			lo = len(cum) - 1
		}
		return uint32(lo)
	}

	// Users also get skewed activity: a small fraction of users produce
	// most ratings, approximated by squaring a uniform draw.
	for i := 0; i < opt.Ratings; i++ {
		uu := rng.Float64()
		user := uint32(uu * uu * float64(opt.Users))
		if user >= opt.Users {
			user = opt.Users - 1
		}
		item := opt.Users + sampleItem()
		rating := float32(1 + rng.Intn(opt.MaxRating))
		coo.Add(user, item, rating)
	}
	return coo
}
