package gen

import "graphmat/internal/sparse"

// GridOptions configures the 2-D grid generator that stands in for the USA
// road network dataset (§5.1, DIMACS9 CAL). Road networks are nearly planar
// with tiny degree and enormous diameter; a width×height 4-neighbor grid has
// exactly those properties, which is what makes SSSP run for many low-work
// iterations (the regime Figure 4e highlights).
type GridOptions struct {
	Width, Height uint32
	// MaxWeight assigns each edge a uniform integer weight in [1, MaxWeight]
	// (road segment lengths); 0 means 10.
	MaxWeight int
	// Diagonal adds the down-right diagonal neighbor, raising average degree
	// from ~4 toward the road-network value and breaking grid symmetry.
	Diagonal bool
	Seed     uint64
}

// Grid generates the bidirectional grid graph as adjacency triples
// (Row = src, Col = dst). Vertex (x, y) has id y*Width+x.
func Grid(opt GridOptions) *sparse.COO[float32] {
	if opt.MaxWeight == 0 {
		opt.MaxWeight = 10
	}
	rng := NewRNG(opt.Seed)
	n := opt.Width * opt.Height
	coo := sparse.NewCOO[float32](n, n)
	addBoth := func(a, b uint32) {
		w := float32(1 + rng.Intn(opt.MaxWeight))
		coo.Add(a, b, w)
		coo.Add(b, a, w)
	}
	for y := uint32(0); y < opt.Height; y++ {
		for x := uint32(0); x < opt.Width; x++ {
			id := y*opt.Width + x
			if x+1 < opt.Width {
				addBoth(id, id+1)
			}
			if y+1 < opt.Height {
				addBoth(id, id+opt.Width)
			}
			if opt.Diagonal && x+1 < opt.Width && y+1 < opt.Height {
				addBoth(id, id+opt.Width+1)
			}
		}
	}
	return coo
}
