package gen

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGUint32n(t *testing.T) {
	r := NewRNG(1)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Uint32n(10)
		if v >= 10 {
			t.Fatalf("Uint32n(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("value %d drawn %d times, expected ~10000", v, c)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v >= 100 || seen[v] {
			t.Fatalf("invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestRMATBasic(t *testing.T) {
	g := RMAT(RMATOptions{Scale: 10, EdgeFactor: 8, Seed: 1})
	if g.NRows != 1024 {
		t.Fatalf("n = %d", g.NRows)
	}
	if len(g.Entries) != 1024*8 {
		t.Fatalf("m = %d", len(g.Entries))
	}
	for _, e := range g.Entries {
		if e.Row >= 1024 || e.Col >= 1024 {
			t.Fatal("edge endpoint out of range")
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(RMATOptions{Scale: 8, EdgeFactor: 4, Seed: 99})
	b := RMAT(RMATOptions{Scale: 8, EdgeFactor: 4, Seed: 99})
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("lengths differ")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// With A=0.57 the degree distribution must be heavy-tailed: the top 1%
	// of vertices should hold far more than 1% of the edges.
	g := RMAT(RMATOptions{Scale: 12, EdgeFactor: 16, Seed: 3, NoPermute: true})
	deg := make([]int, g.NRows)
	for _, e := range g.Entries {
		deg[e.Row]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	top := 0
	for i := 0; i < len(deg)/100; i++ {
		top += deg[i]
	}
	frac := float64(top) / float64(len(g.Entries))
	if frac < 0.10 {
		t.Errorf("top 1%% of vertices hold only %.1f%% of edges; RMAT should be skewed", frac*100)
	}
	// An Erdős–Rényi graph of the same size must NOT be that skewed.
	er := ErdosRenyi(g.NRows, len(g.Entries), 0, 3)
	deg2 := make([]int, er.NRows)
	for _, e := range er.Entries {
		deg2[e.Row]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg2)))
	top2 := 0
	for i := 0; i < len(deg2)/100; i++ {
		top2 += deg2[i]
	}
	frac2 := float64(top2) / float64(len(er.Entries))
	if frac2 >= frac {
		t.Errorf("ER graph (%.3f) as skewed as RMAT (%.3f)", frac2, frac)
	}
}

func TestRMATWeights(t *testing.T) {
	g := RMAT(RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 2, MaxWeight: 7})
	for _, e := range g.Entries {
		if e.Val < 1 || e.Val > 7 || e.Val != float32(int(e.Val)) {
			t.Fatalf("weight %v outside [1,7] integers", e.Val)
		}
	}
	g2 := RMAT(RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 2})
	for _, e := range g2.Entries {
		if e.Val != 1 {
			t.Fatalf("unweighted edge has weight %v", e.Val)
		}
	}
}

func TestBipartite(t *testing.T) {
	g := Bipartite(BipartiteOptions{Users: 1000, Items: 50, Ratings: 20000, Seed: 4})
	if g.NRows != 1050 {
		t.Fatalf("n = %d", g.NRows)
	}
	if len(g.Entries) != 20000 {
		t.Fatalf("ratings = %d", len(g.Entries))
	}
	itemCounts := make([]int, 50)
	for _, e := range g.Entries {
		if e.Row >= 1000 {
			t.Fatal("rating source is not a user")
		}
		if e.Col < 1000 || e.Col >= 1050 {
			t.Fatal("rating target is not an item")
		}
		if e.Val < 1 || e.Val > 5 {
			t.Fatalf("rating %v outside 1..5", e.Val)
		}
		itemCounts[e.Col-1000]++
	}
	// Zipf skew: item 0 should be much more popular than item 49.
	if itemCounts[0] <= itemCounts[49] {
		t.Errorf("no popularity skew: item0=%d item49=%d", itemCounts[0], itemCounts[49])
	}
}

func TestGrid(t *testing.T) {
	g := Grid(GridOptions{Width: 10, Height: 5, Seed: 6})
	if g.NRows != 50 {
		t.Fatalf("n = %d", g.NRows)
	}
	// Horizontal: 9*5, vertical: 10*4, each both directions.
	want := 2 * (9*5 + 10*4)
	if len(g.Entries) != want {
		t.Fatalf("edges = %d, want %d", len(g.Entries), want)
	}
	// Symmetric by construction.
	set := make(map[[2]uint32]float32)
	for _, e := range g.Entries {
		set[[2]uint32{e.Row, e.Col}] = e.Val
	}
	for k, w := range set {
		if w2, ok := set[[2]uint32{k[1], k[0]}]; !ok || w2 != w {
			t.Fatalf("edge %v not mirrored with equal weight", k)
		}
	}
}

func TestGridDiagonal(t *testing.T) {
	g := Grid(GridOptions{Width: 3, Height: 3, Diagonal: true, Seed: 1})
	base := 2 * (2*3 + 3*2)
	diag := 2 * 4
	if len(g.Entries) != base+diag {
		t.Fatalf("edges = %d, want %d", len(g.Entries), base+diag)
	}
}

// Property: RMAT edge endpoints are always within [0, 2^scale).
func TestQuickRMATBounds(t *testing.T) {
	f := func(seed uint64, scaleRaw uint8) bool {
		scale := int(scaleRaw%6) + 4
		g := RMAT(RMATOptions{Scale: scale, EdgeFactor: 4, Seed: seed})
		n := uint32(1) << scale
		for _, e := range g.Entries {
			if e.Row >= n || e.Col >= n {
				return false
			}
		}
		return len(g.Entries) == int(n)*4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the mean degree of an RMAT graph equals the edge factor.
func TestQuickRMATEdgeFactor(t *testing.T) {
	f := func(seed uint64) bool {
		g := RMAT(RMATOptions{Scale: 8, EdgeFactor: 16, Seed: seed})
		mean := float64(len(g.Entries)) / float64(g.NRows)
		return math.Abs(mean-16) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
