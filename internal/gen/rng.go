// Package gen provides the deterministic workload generators behind the
// paper's datasets (§5.1, Table 1): the Graph500 RMAT generator with the
// paper's parameter sets, the synthetic bipartite ratings generator used for
// collaborative filtering, a 2-D grid generator standing in for road
// networks, and an Erdős–Rényi generator for tests.
package gen

// RNG is a SplitMix64 pseudo-random generator. It is deterministic across
// runs and platforms, cheap to seed (any uint64 works, including 0), and
// each value costs a handful of arithmetic ops — important because the RMAT
// generator draws scale × edges values.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint32n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint32n(n uint32) uint32 {
	// Lemire's multiply-shift rejection-free variant is fine here: the tiny
	// modulo bias of the plain multiply-shift is irrelevant for workload
	// generation, and determinism is what matters.
	return uint32((r.Uint64() >> 32) * uint64(n) >> 32)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Fork returns an independent generator derived from this one's stream,
// letting parallel generation remain deterministic regardless of
// interleaving.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// Perm returns a deterministic pseudo-random permutation of [0, n) via
// Fisher–Yates.
func (r *RNG) Perm(n uint32) []uint32 {
	p := make([]uint32, n)
	for i := uint32(0); i < n; i++ {
		p[i] = i
	}
	for i := n; i > 1; i-- {
		j := r.Uint32n(i)
		p[i-1], p[j] = p[j], p[i-1]
	}
	return p
}
