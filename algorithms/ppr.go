package algorithms

import (
	"context"
	"math"

	"graphmat"
)

// PersonalizedPageRankProgram is random-walk-with-restart PageRank toward a
// source set: rank teleports back to the sources instead of uniformly (an
// extension beyond the paper's five algorithms; the C++ GraphMat release
// ships the same variant). The program reuses the PR vertex layout plus a
// per-vertex restart weight folded into Apply.
type PersonalizedPageRankProgram struct {
	// RestartProb is the teleport probability r.
	RestartProb float64
	// Tolerance deactivates vertices whose rank settles.
	Tolerance float64
}

// PPRVertex is the personalized PageRank vertex state.
type PPRVertex struct {
	Rank    float64
	InvDeg  float64
	Restart float64 // r for source vertices, 0 elsewhere
}

// SendMessage emits rank/degree; sinks send nothing.
func (p PersonalizedPageRankProgram) SendMessage(_ graphmat.VertexID, prop PPRVertex) (float64, bool) {
	if prop.InvDeg == 0 {
		return 0, false
	}
	return prop.Rank * prop.InvDeg, true
}

// ProcessMessage passes the contribution through.
func (PersonalizedPageRankProgram) ProcessMessage(m float64, _ float32, _ PPRVertex) float64 {
	return m
}

// Reduce sums contributions.
func (PersonalizedPageRankProgram) Reduce(a, b float64) float64 { return a + b }

// Apply folds the teleport mass: rank = restart + (1-r)·sum, where restart
// is nonzero only at the personalization sources.
func (p PersonalizedPageRankProgram) Apply(sum float64, _ graphmat.VertexID, prop *PPRVertex) bool {
	next := prop.Restart + (1-p.RestartProb)*sum
	changed := math.Abs(next-prop.Rank) > p.Tolerance
	prop.Rank = next
	return changed
}

// Mul is ProcessMessage as a destination-free semiring multiply (the
// (+, ×) fold with the × already folded into the message), qualifying PPR
// for multi-source block runs.
func (PersonalizedPageRankProgram) Mul(m float64, _ float32) float64 { return m }

// Add is Reduce under its semiring name.
func (PersonalizedPageRankProgram) Add(a, b float64) float64 { return a + b }

// Identity is the fold's neutral element (never fed to Add by the kernels,
// so the IEEE 0 + -0 subtlety cannot arise).
func (PersonalizedPageRankProgram) Identity() float64 { return 0 }

// Direction scatters rank along out-edges.
func (PersonalizedPageRankProgram) Direction() graphmat.Direction { return graphmat.Out }

// ProcessIgnoresDst declares the fast path.
func (PersonalizedPageRankProgram) ProcessIgnoresDst() {}

// ReducesBySumF64 declares the (+, passthrough) float64 fold — for both the
// scalar SpMV and, through the Semiring half, the multi-source SpMM — routing
// the column folds through the SIMD kernel backends.
func (PersonalizedPageRankProgram) ReducesBySumF64() {}

// PersonalizedPageRank ranks vertices by proximity to the given source set.
// The graph must be built with NewPersonalizedPageRankGraph (or any
// Graph[PPRVertex, float32]). Ranks are a probability distribution over
// vertices (they sum to ~1 on source-reachable graphs).
//
// Deprecated: use RunPersonalizedPageRank.
func PersonalizedPageRank(g *graphmat.Graph[PPRVertex, float32], sources []uint32, opt PageRankOptions) ([]float64, graphmat.Stats) {
	ws := graphmat.NewWorkspace[float64, float64](int(g.NumVertices()), opt.Config.Vector)
	ranks, stats, err := PersonalizedPageRankWithWorkspace(g, sources, opt, ws)
	if err != nil {
		panic(err) // workspace built for this graph and config above
	}
	return ranks, stats
}

// PersonalizedPageRankWithWorkspace is PersonalizedPageRank with
// caller-managed engine scratch for repeated queries on one graph.
//
// Deprecated: use RunPersonalizedPageRank with WithWorkspace.
func PersonalizedPageRankWithWorkspace(g *graphmat.Graph[PPRVertex, float32], sources []uint32, opt PageRankOptions, ws *graphmat.Workspace[float64, float64]) ([]float64, graphmat.Stats, error) {
	return PersonalizedPageRankContext(context.Background(), g, sources, opt, ws, nil)
}

// PersonalizedPageRankContext is PersonalizedPageRank as a cancelable,
// observable session; see PageRankContext for the contract.
//
// Deprecated: use RunPersonalizedPageRank with WithObserver; this remains
// the implementation behind it.
func PersonalizedPageRankContext(ctx context.Context, g *graphmat.Graph[PPRVertex, float32], sources []uint32, opt PageRankOptions, ws *graphmat.Workspace[float64, float64], obs Observer) ([]float64, graphmat.Stats, error) {
	opt = opt.withDefaults()
	perSource := opt.RestartProb / float64(len(sources))
	isSource := make(map[uint32]bool, len(sources))
	for _, s := range sources {
		isSource[s] = true
	}
	g.InitProps(func(v uint32) PPRVertex {
		p := PPRVertex{}
		if d := g.OutDegree(v); d > 0 {
			p.InvDeg = 1 / float64(d)
		}
		if isSource[v] {
			p.Restart = perSource
			p.Rank = 1 / float64(len(sources))
		}
		return p
	})
	prog := PersonalizedPageRankProgram{RestartProb: opt.RestartProb, Tolerance: opt.Tolerance}
	cfg := opt.Config
	cfg.MaxIterations = 1
	sess := newSession(obs)
	var stats graphmat.Stats
	stats.Reason = graphmat.MaxIterations
	pprRanks := func() []float64 {
		ranks := make([]float64, g.NumVertices())
		for v := range ranks {
			ranks[v] = g.Prop(uint32(v)).Rank
		}
		return ranks
	}
	for it := 0; it < opt.MaxIterations; it++ {
		g.SetAllActive()
		s, err := graphmat.RunContext(ctx, g, prog, cfg, ws, sess.options()...)
		accumulate(&stats, s)
		if err != nil {
			stats.Reason = s.Reason
			return pprRanks(), stats, err
		}
		if !g.Active().Any() {
			stats.Reason = graphmat.Converged
			break
		}
	}
	return pprRanks(), stats, nil
}

// NewPersonalizedPageRankGraph builds the PPR property graph.
func NewPersonalizedPageRankGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[PPRVertex, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.New[PPRVertex](adj, graphmat.Options{Partitions: partitions})
}

// NewPersonalizedPageRankStore is NewPersonalizedPageRankGraph as a
// versioned store: the same preprocessing and epoch-0 graph, plus live edge
// updates via ApplyEdges.
func NewPersonalizedPageRankStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[PPRVertex, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.NewStore[PPRVertex](adj, graphmat.Options{Partitions: partitions})
}
