package algorithms

import (
	"context"
	"fmt"

	"graphmat"
)

// This file is the package's unified run surface: one options-struct
// entrypoint per algorithm — Run<Algo>(ctx, g, ...required args, opts...) —
// replacing the historical four-way sprawl of <Algo> /
// <Algo>WithWorkspace / <Algo>Context signatures. The old names remain as
// thin deprecated wrappers, so nothing breaks, but new code (and the server
// and CLI) should reach for these.
//
// Every entrypoint accepts the same option set; options an algorithm has no
// use for are simply ignored (WithTolerance on BFS does nothing). A
// workspace passed via WithWorkspace must be of the algorithm's scratch type
// (the same value NewScratch-style constructors return); a mismatch is an
// error, nil allocates fresh scratch.

// Option configures one unified algorithm run.
type Option func(*settings)

// settings is the resolved option set of one run.
type settings struct {
	cfg     graphmat.Config
	ws      any
	obs     Observer
	iters   int
	tol     float64
	restart float64
}

func newSettings(opts []Option) *settings {
	s := &settings{}
	for _, o := range opts {
		if o != nil {
			o(s)
		}
	}
	return s
}

// WithConfig sets the full engine configuration (threads, kernel mode,
// schedule, vector kind).
func WithConfig(cfg graphmat.Config) Option { return func(s *settings) { s.cfg = cfg } }

// WithThreads sets the engine worker count; 0 means GOMAXPROCS. A
// performance knob: results are identical across thread counts.
func WithThreads(n int) Option { return func(s *settings) { s.cfg.Threads = n } }

// WithMode selects the engine's kernel direction (Auto, Pull or Push).
// Like WithThreads, a performance knob that cannot change results.
func WithMode(m graphmat.Mode) Option { return func(s *settings) { s.cfg.Mode = m } }

// WithWorkspace supplies caller-managed engine scratch for repeated runs on
// one graph. The value must be the algorithm's scratch type (for most, a
// *graphmat.Workspace[M, R] of the algorithm's message/reduction types; for
// triangle counting a *TriangleScratch); nil allocates fresh scratch.
func WithWorkspace(ws any) Option { return func(s *settings) { s.ws = ws } }

// WithObserver attaches a per-superstep progress callback; a non-nil error
// return stops the run.
func WithObserver(obs Observer) Option { return func(s *settings) { s.obs = obs } }

// WithIterations caps iterative algorithms (pagerank, ppr, hits); 0 means
// the algorithm's default. Ignored by traversals that run to convergence.
func WithIterations(n int) Option { return func(s *settings) { s.iters = n } }

// WithTolerance sets the convergence threshold of pagerank/ppr.
func WithTolerance(t float64) Option { return func(s *settings) { s.tol = t } }

// WithRestartProb sets the teleport probability of pagerank/ppr; 0 means
// 0.15.
func WithRestartProb(r float64) Option { return func(s *settings) { s.restart = r } }

// settingsWorkspace resolves the run's engine workspace: the caller's via
// WithWorkspace when its type fits, fresh scratch otherwise (nil — including
// a typed nil pointer — allocates).
func settingsWorkspace[M, R any](n int, set *settings) (*graphmat.Workspace[M, R], error) {
	if set.ws == nil {
		return graphmat.NewWorkspace[M, R](n, set.cfg.Vector), nil
	}
	ws, ok := set.ws.(*graphmat.Workspace[M, R])
	if !ok {
		return nil, fmt.Errorf("algorithms: workspace type %T does not belong to this algorithm", set.ws)
	}
	if ws == nil {
		return graphmat.NewWorkspace[M, R](n, set.cfg.Vector), nil
	}
	return ws, nil
}

func (s *settings) pageRankOptions() PageRankOptions {
	return PageRankOptions{MaxIterations: s.iters, Tolerance: s.tol, RestartProb: s.restart, Config: s.cfg}
}

// RunBFS computes hop distances from root on a graph built by NewBFSGraph;
// unreachable vertices report Unreached. Options: WithConfig/WithThreads/
// WithMode, WithWorkspace (*graphmat.Workspace[uint32, uint32]),
// WithObserver. A canceled run returns the partial distances with the stop
// cause.
func RunBFS(ctx context.Context, g *graphmat.Graph[uint32, float32], root uint32, opts ...Option) ([]uint32, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[uint32, uint32](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	return BFSContext(ctx, g, root, set.cfg, ws, set.obs)
}

// RunSSSP computes shortest-path distances from src on a graph built by
// NewSSSPGraph; unreachable vertices report InfDist. Options as in RunBFS
// (workspace type *graphmat.Workspace[float32, float32]).
func RunSSSP(ctx context.Context, g *graphmat.Graph[float32, float32], src uint32, opts ...Option) ([]float32, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[float32, float32](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	return SSSPContext(ctx, g, src, set.cfg, ws, set.obs)
}

// RunPageRank computes PageRank on a graph built by NewPageRankGraph.
// Options: WithIterations, WithTolerance, WithRestartProb, plus the engine
// options (workspace type *graphmat.Workspace[float64, float64]).
func RunPageRank(ctx context.Context, g *graphmat.Graph[PRVertex, float32], opts ...Option) ([]float64, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[float64, float64](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	return PageRankContext(ctx, g, set.pageRankOptions(), ws, set.obs)
}

// RunPersonalizedPageRank ranks vertices by proximity to the source set on a
// graph built by NewPersonalizedPageRankGraph. Options as in RunPageRank.
func RunPersonalizedPageRank(ctx context.Context, g *graphmat.Graph[PPRVertex, float32], sources []uint32, opts ...Option) ([]float64, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[float64, float64](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	return PersonalizedPageRankContext(ctx, g, sources, set.pageRankOptions(), ws, set.obs)
}

// RunConnectedComponents labels every vertex with the smallest vertex id in
// its component, on a graph built by NewCCGraph. Options as in RunBFS
// (workspace type *graphmat.Workspace[uint32, uint32]).
func RunConnectedComponents(ctx context.Context, g *graphmat.Graph[uint32, float32], opts ...Option) ([]uint32, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[uint32, uint32](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	return ConnectedComponentsContext(ctx, g, set.cfg, ws, set.obs)
}

// RunHITS computes hub and authority scores on a graph built by
// NewHITSGraph. Options: WithIterations plus the engine options (workspace
// type *graphmat.Workspace[float64, float64]).
func RunHITS(ctx context.Context, g *graphmat.Graph[HITSVertex, float32], opts ...Option) ([]HITSVertex, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[float64, float64](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	return HITSContext(ctx, g, HITSOptions{Iterations: set.iters, Config: set.cfg}, ws, set.obs)
}

// RunTriangleCount counts triangles on a graph built by NewTriangleGraph.
// Options: the engine options; the workspace type is *TriangleScratch.
func RunTriangleCount(ctx context.Context, g *graphmat.Graph[TCVertex, float32], opts ...Option) (int64, graphmat.Stats, error) {
	set := newSettings(opts)
	var sc *TriangleScratch
	if set.ws == nil {
		sc = NewTriangleScratch(int(g.NumVertices()), set.cfg.Vector)
	} else {
		s, ok := set.ws.(*TriangleScratch)
		if !ok {
			return 0, graphmat.Stats{}, fmt.Errorf("algorithms: workspace type %T does not belong to this algorithm", set.ws)
		}
		if s == nil {
			s = NewTriangleScratch(int(g.NumVertices()), set.cfg.Vector)
		}
		sc = s
	}
	return TriangleCountContext(ctx, g, set.cfg, sc, set.obs)
}
