package algorithms

import (
	"context"
	"errors"

	"graphmat"
)

// This file is the multi-source batch layer: one engine block run advancing
// up to graphmat.MaxBlockSources independent source columns per adjacency
// sweep, with wider batches split into word-sized blocks. Every batched
// algorithm is bit-identical per source to the corresponding single-source
// run — the block engine's semiring contract, asserted end-to-end by the
// package's differential suite — so batching is purely a throughput knob:
// the column probes and edge walks that dominate a traversal are paid once
// per edge instead of once per (edge, source).

// ErrBatchUnsupported reports a RunBatch call on an algorithm with no
// multi-source form (pagerank, components, triangles, hits — their runs are
// not parameterized by a source vertex).
var ErrBatchUnsupported = errors.New("algorithms: algorithm does not support batched multi-source runs")

// BatchResult is the uniform output of a multi-source registry run: one
// value series per source, plus the aggregate engine stats of the whole
// batch and the epoch the batch was pinned to. Values[i] corresponds to
// Sources[i] and is laid out exactly like the single-source Result.Values.
type BatchResult struct {
	Sources []uint32       `json:"sources"`
	Values  [][]float64    `json:"values"`
	Stats   graphmat.Stats `json:"stats"`
	Epoch   uint64         `json:"epoch"`
}

// fullMask returns the k-bit live-column mask.
func fullMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(k) - 1
}

// runTraversalBatch is the shared driver of the single-shot traversal family
// (BFS, SSSP, reachability, widest paths): property, message and reduction
// types coincide, every column starts as {unreached everywhere, sourceVal at
// its source} and the block run iterates until every column's frontier dies.
func runTraversalBatch[V any, P graphmat.BlockProgram[V, float32, V, V]](
	ctx context.Context, g *graphmat.Graph[V, float32], p P, sources []uint32,
	unreached, sourceVal V, set *settings,
) ([][]V, graphmat.Stats, error) {
	n := int(g.NumVertices())
	for _, src := range sources {
		if err := checkSource(src, g.NumVertices(), "source"); err != nil {
			return nil, graphmat.Stats{}, err
		}
	}
	sess := newSession(set.obs)
	out := make([][]V, len(sources))
	var stats graphmat.Stats
	stats.Reason = graphmat.Converged
	for lo := 0; lo < len(sources); lo += graphmat.MaxBlockSources {
		hi := min(lo+graphmat.MaxBlockSources, len(sources))
		chunk := sources[lo:hi]
		k := len(chunk)
		st := graphmat.NewBlockState[V](n, k)
		st.SetAllProps(unreached)
		for s, src := range chunk {
			st.SetProp(src, s, sourceVal)
			st.Activate(src, s)
		}
		s, err := graphmat.RunBlockContext(ctx, g, p, st, set.cfg, nil, sess.options()...)
		accumulate(&stats, s)
		if err != nil {
			stats.Reason = s.Reason
			return out, stats, err
		}
		if s.Reason != graphmat.Converged {
			stats.Reason = s.Reason
		}
		for s := range chunk {
			col := make([]V, n)
			st.Column(s, col)
			out[lo+s] = col
		}
	}
	return out, stats, nil
}

// RunBFSBatch computes hop distances from every source in one multi-source
// block run (chunks of up to graphmat.MaxBlockSources share each adjacency
// sweep). out[i][v] is the distance from sources[i] to v, bit-identical to
// RunBFS(ctx, g, sources[i]). Engine options apply (WithConfig/WithThreads/
// WithMode, WithObserver); WithWorkspace is ignored — block scratch is
// allocated per chunk.
func RunBFSBatch(ctx context.Context, g *graphmat.Graph[uint32, float32], sources []uint32, opts ...Option) ([][]uint32, graphmat.Stats, error) {
	return runTraversalBatch(ctx, g, BFSProgram{}, sources, uint32(Unreached), 0, newSettings(opts))
}

// RunSSSPBatch computes shortest-path distances from every source in one
// multi-source block run; out[i] is bit-identical to RunSSSP from
// sources[i]. Options as in RunBFSBatch.
func RunSSSPBatch(ctx context.Context, g *graphmat.Graph[float32, float32], sources []uint32, opts ...Option) ([][]float32, graphmat.Stats, error) {
	return runTraversalBatch(ctx, g, SSSPProgram{}, sources, InfDist, 0, newSettings(opts))
}

// RunReachabilityBatch computes directed reachability from every source in
// one multi-source block run; out[i] is bit-identical to RunReachability
// from sources[i]. Options as in RunBFSBatch.
func RunReachabilityBatch(ctx context.Context, g *graphmat.Graph[uint32, float32], sources []uint32, opts ...Option) ([][]uint32, graphmat.Stats, error) {
	return runTraversalBatch(ctx, g, ReachabilityProgram{}, sources, 0, 1, newSettings(opts))
}

// RunWidestPathBatch computes bottleneck path widths from every source in
// one multi-source block run; out[i] is bit-identical to RunWidestPath from
// sources[i]. Options as in RunBFSBatch.
func RunWidestPathBatch(ctx context.Context, g *graphmat.Graph[float32, float32], sources []uint32, opts ...Option) ([][]float32, graphmat.Stats, error) {
	return runTraversalBatch(ctx, g, WidestPathProgram{}, sources, 0, WidestSourceCap, newSettings(opts))
}

// RunPersonalizedPageRankBatch runs one single-source personalized PageRank
// per source — k independent personalization vectors advanced together, one
// adjacency sweep per outer iteration serving every still-unconverged column.
// out[i] is bit-identical to RunPersonalizedPageRank(ctx, g, []uint32{
// sources[i]}, ...): each column converges (or hits the iteration cap) on
// its own schedule and then drops out of the sweep. Options: WithIterations/
// WithTolerance/WithRestartProb plus the engine options; WithWorkspace is
// ignored.
func RunPersonalizedPageRankBatch(ctx context.Context, g *graphmat.Graph[PPRVertex, float32], sources []uint32, opts ...Option) ([][]float64, graphmat.Stats, error) {
	set := newSettings(opts)
	n := int(g.NumVertices())
	for _, src := range sources {
		if err := checkSource(src, g.NumVertices(), "source"); err != nil {
			return nil, graphmat.Stats{}, err
		}
	}
	opt := set.pageRankOptions().withDefaults()
	inv := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.OutDegree(uint32(v)); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	prog := PersonalizedPageRankProgram{RestartProb: opt.RestartProb, Tolerance: opt.Tolerance}
	cfg := set.cfg
	cfg.MaxIterations = 1
	sess := newSession(set.obs)
	out := make([][]float64, len(sources))
	var stats graphmat.Stats
	stats.Reason = graphmat.Converged
	for lo := 0; lo < len(sources); lo += graphmat.MaxBlockSources {
		hi := min(lo+graphmat.MaxBlockSources, len(sources))
		chunk := sources[lo:hi]
		k := len(chunk)
		st := graphmat.NewBlockState[PPRVertex](n, k)
		st.InitProps(func(v uint32, s int) PPRVertex {
			p := PPRVertex{InvDeg: inv[v]}
			if v == chunk[s] {
				// A single-source personalization set: the whole teleport
				// mass and the initial rank live at the source (matching the
				// scalar driver with len(sources) == 1).
				p.Restart = opt.RestartProb
				p.Rank = 1
			}
			return p
		})
		ws := graphmat.NewBlockWorkspace[float64, float64](n, k)
		live := fullMask(k)
		for it := 0; it < opt.MaxIterations && live != 0; it++ {
			st.ActivateAllMask(live)
			s, err := graphmat.RunBlockContext(ctx, g, prog, st, cfg, ws, sess.options()...)
			accumulate(&stats, s)
			if err != nil {
				stats.Reason = s.Reason
				return out, stats, err
			}
			// A column with no vertex left active has settled within
			// Tolerance everywhere: converged, out of the sweep.
			live &= st.ActiveColumns()
		}
		if live != 0 {
			stats.Reason = graphmat.MaxIterations
		}
		row := make([]PPRVertex, n)
		for s := range chunk {
			st.Column(s, row)
			ranks := make([]float64, n)
			for v := range ranks {
				ranks[v] = row[v].Rank
			}
			out[lo+s] = ranks
		}
	}
	return out, stats, nil
}
