package algorithms

import (
	"path/filepath"
	"testing"

	"graphmat"
	"graphmat/internal/gen"
)

// The snapshot differential — the persistence acceptance bar: for EVERY
// registered algorithm × {Pull, Push, Auto}, an instance Opened from an
// mmap'd GMATSNAP file must produce results bit-identical to the on-heap
// Build it was imaged from, both on the pristine graph and after the same
// update batches (the WAL-replay path applies updates to a mapped base
// exactly like this) — values, series, counts and engine statistics alike.
func TestSnapDifferentialAllAlgorithmsAllModes(t *testing.T) {
	baseAdj := gen.RMAT(gen.RMATOptions{Scale: 10, EdgeFactor: 8, Seed: 42, MaxWeight: 10})
	n := baseAdj.NRows
	batches := updateBatches(n)

	master := baseAdj.Clone()
	graphmat.NormalizeAdjacency(master, 0)

	params := map[string]Params{
		"bfs":          {Source: 0},
		"sssp":         {Source: 0},
		"pagerank":     {Iterations: 15},
		"ppr":          {Sources: []uint32{0, 3}, Iterations: 15},
		"components":   {},
		"triangles":    {},
		"hits":         {Iterations: 10},
		"reachability": {Source: 0},
		"widest":       {Source: 0},
	}
	dir := t.TempDir()
	for _, algo := range Names() {
		p, ok := params[algo]
		if !ok {
			t.Fatalf("registered algorithm %q missing from the snapshot differential matrix", algo)
		}
		t.Run(algo, func(t *testing.T) {
			spec, _ := Lookup(algo)
			if spec.Open == nil {
				t.Fatalf("%s has no Open constructor: every registered algorithm must boot from a snapshot", algo)
			}
			heap, err := spec.Build(baseAdj.Clone(), 6)
			if err != nil {
				t.Fatal(err)
			}
			img, err := heap.SnapImage(99)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, algo+".snap")
			if err := graphmat.WriteSnap(path, img); err != nil {
				t.Fatal(err)
			}
			sf, err := graphmat.OpenSnap(path)
			if err != nil {
				t.Fatal(err)
			}
			defer sf.Close()
			if sf.Image().Tag != 99 {
				t.Errorf("tag = %d, want the writer's mark 99", sf.Image().Tag)
			}
			mapped, err := spec.Open(sf.Image())
			if err != nil {
				t.Fatal(err)
			}
			if mapped.NumEdges() != heap.NumEdges() {
				t.Fatalf("edge counts diverge: mapped %d vs heap %d", mapped.NumEdges(), heap.NumEdges())
			}

			for _, mode := range []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto} {
				pm := p
				pm.Mode = mode
				refRes, err := heap.Run(pm, nil)
				if err != nil {
					t.Fatal(err)
				}
				gotRes, err := mapped.Run(pm, nil)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, algo+" mapped, mode "+mode.String(), refRes, gotRes)
			}

			// Updates over the mapped base — the boot-time WAL replay path —
			// must track the on-heap instance batch for batch.
			m := master
			for i, b := range batches {
				if m, err = graphmat.ApplyToAdjacency(m, b); err != nil {
					t.Fatal(err)
				}
				lookup := NewRawEdgeLookup(m)
				refApply, err := heap.ApplyUpdates(b, lookup)
				if err != nil {
					t.Fatal(err)
				}
				gotApply, err := mapped.ApplyUpdates(b, lookup)
				if err != nil {
					t.Fatal(err)
				}
				if gotApply.Epoch != refApply.Epoch {
					t.Fatalf("batch %d: mapped epoch %d, heap epoch %d", i, gotApply.Epoch, refApply.Epoch)
				}
			}
			pm := p
			pm.Mode = graphmat.Auto
			refRes, err := heap.Run(pm, nil)
			if err != nil {
				t.Fatal(err)
			}
			gotRes, err := mapped.Run(pm, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, algo+" mapped after updates", refRes, gotRes)
		})
	}
}
