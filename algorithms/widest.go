package algorithms

import (
	"context"
	"math"

	"graphmat"
)

// WidestSourceCap is the source's own path width: effectively unbounded.
// math.MaxFloat32 rather than +Inf so results survive JSON encoding.
const WidestSourceCap = float32(math.MaxFloat32)

// WidestPathProgram computes widest (bottleneck) paths over the (max, min)
// semiring: the width of a path is its narrowest edge, and a vertex's
// property is the widest width over all paths from the source. Unreachable
// vertices stay at 0. Like SSSP it is a frontier fixpoint — a vertex
// reactivates whenever its best width improves.
type WidestPathProgram struct{}

// SendMessage emits the vertex's current best width.
func (WidestPathProgram) SendMessage(_ graphmat.VertexID, prop float32) (float32, bool) {
	return prop, true
}

// ProcessMessage narrows the path by the edge's capacity.
func (WidestPathProgram) ProcessMessage(m float32, w float32, _ float32) float32 { return min(m, w) }

// Reduce keeps the wider path.
func (WidestPathProgram) Reduce(a, b float32) float32 { return max(a, b) }

// Apply adopts an improved width and reactivates the vertex.
func (WidestPathProgram) Apply(r float32, _ graphmat.VertexID, prop *float32) bool {
	if r > *prop {
		*prop = r
		return true
	}
	return false
}

// Mul is ProcessMessage as a destination-free semiring multiply.
func (WidestPathProgram) Mul(m float32, w float32) float32 { return min(m, w) }

// Add is Reduce under its semiring name.
func (WidestPathProgram) Add(a, b float32) float32 { return max(a, b) }

// Identity is the max fold's neutral element: zero width.
func (WidestPathProgram) Identity() float32 { return 0 }

// Direction follows out-edges, like SSSP.
func (WidestPathProgram) Direction() graphmat.Direction { return graphmat.Out }

// ProcessIgnoresDst declares the fast path.
func (WidestPathProgram) ProcessIgnoresDst() {}

// ReducesByMaxMinF32 declares the float32 (max, min) bottleneck fold,
// routing the scalar and block column folds through the kernels layer's
// fused path-fold primitives.
func (WidestPathProgram) ReducesByMaxMinF32() {}

// NewWidestPathGraph builds the widest-path property graph: self-loops
// removed, directed weighted edges kept as-is (weights are capacities). The
// input is consumed.
func NewWidestPathGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[float32, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.New[float32](adj, graphmat.Options{Partitions: partitions})
}

// NewWidestPathStore is NewWidestPathGraph as a versioned store.
func NewWidestPathStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[float32, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.NewStore[float32](adj, graphmat.Options{Partitions: partitions})
}

// RunWidestPath computes bottleneck path widths from src: out[v] is the
// maximum over paths src→v of the minimum edge weight along the path, 0 for
// unreachable vertices and WidestSourceCap at src itself. Options:
// WithConfig/WithThreads/WithMode, WithWorkspace
// (*graphmat.Workspace[float32, float32]), WithObserver.
func RunWidestPath(ctx context.Context, g *graphmat.Graph[float32, float32], src uint32, opts ...Option) ([]float32, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[float32, float32](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	g.SetAllProps(0)
	g.SetProp(src, WidestSourceCap)
	g.ClearActive()
	g.SetActive(src)
	stats, err := graphmat.RunContext(ctx, g, WidestPathProgram{}, set.cfg, ws, newSession(set.obs).options()...)
	width := make([]float32, g.NumVertices())
	for v := range width {
		width[v] = g.Prop(uint32(v))
	}
	return width, stats, err
}
