package algorithms

import (
	"context"
	"math"

	"graphmat"
)

// InfDist marks a vertex SSSP never reached.
const InfDist = float32(math.MaxFloat32)

// SSSPProgram is the program of the paper's appendix (and Figure 3), a
// frontier Bellman-Ford: message = current distance, process = message +
// edge weight, reduce = min, apply = min with activation on improvement
// (equation (8), updating only neighbors of vertices that changed).
type SSSPProgram struct{}

// SendMessage emits the vertex's current distance.
func (SSSPProgram) SendMessage(_ graphmat.VertexID, prop float32) (float32, bool) {
	return prop, true
}

// ProcessMessage extends the path along one edge.
func (SSSPProgram) ProcessMessage(m float32, w float32, _ float32) float32 { return m + w }

// Reduce keeps the shorter path.
func (SSSPProgram) Reduce(a, b float32) float32 { return min(a, b) }

// Apply adopts an improved distance and reactivates the vertex.
func (SSSPProgram) Apply(r float32, _ graphmat.VertexID, prop *float32) bool {
	if r < *prop {
		*prop = r
		return true
	}
	return false
}

// Mul is ProcessMessage as a destination-free semiring multiply (the
// (min, +) tropical semiring), qualifying SSSP for multi-source block runs.
func (SSSPProgram) Mul(m float32, w float32) float32 { return m + w }

// Add is Reduce under its semiring name.
func (SSSPProgram) Add(a, b float32) float32 { return min(a, b) }

// Identity is the fold's neutral element: an unreachable distance.
func (SSSPProgram) Identity() float32 { return InfDist }

// Direction performs path traversals only via out-edges (appendix:
// "order = OUT_EDGES").
func (SSSPProgram) Direction() graphmat.Direction { return graphmat.Out }

// ProcessIgnoresDst declares that ProcessMessage never reads the
// destination property, enabling the backend's fast path.
func (SSSPProgram) ProcessIgnoresDst() {}

// ReducesByMinPlusF32 declares the float32 (min, +) tropical fold, routing
// the scalar and block column folds through the kernels layer's fused
// path-fold primitives.
func (SSSPProgram) ReducesByMinPlusF32() {}

// NewSSSPGraph builds the SSSP property graph: self-loops removed, directed
// edges kept as-is with their weights (§5.1). The input is consumed.
func NewSSSPGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[float32, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.New[float32](adj, graphmat.Options{Partitions: partitions})
}

// NewSSSPStore is NewSSSPGraph as a versioned store: the same preprocessing
// and epoch-0 graph, plus live edge updates via ApplyEdges.
func NewSSSPStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[float32, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.NewStore[float32](adj, graphmat.Options{Partitions: partitions})
}

// SSSP computes shortest-path distances from src on a graph built by
// NewSSSPGraph. Unreachable vertices report InfDist.
//
// Deprecated: use RunSSSP with WithConfig.
func SSSP(g *graphmat.Graph[float32, float32], src uint32, cfg graphmat.Config) ([]float32, graphmat.Stats) {
	ws := graphmat.NewWorkspace[float32, float32](int(g.NumVertices()), cfg.Vector)
	dist, stats, err := SSSPWithWorkspace(g, src, cfg, ws)
	if err != nil {
		panic(err) // workspace built for this graph and config above
	}
	return dist, stats
}

// SSSPWithWorkspace is SSSP with caller-managed engine scratch for repeated
// queries on one graph.
//
// Deprecated: use RunSSSP with WithWorkspace.
func SSSPWithWorkspace(g *graphmat.Graph[float32, float32], src uint32, cfg graphmat.Config, ws *graphmat.Workspace[float32, float32]) ([]float32, graphmat.Stats, error) {
	return SSSPContext(context.Background(), g, src, cfg, ws, nil)
}

// SSSPContext is SSSP as a cancelable, observable session; see BFSContext
// for the contract. A stopped run returns the best distances found so far.
//
// Deprecated: use RunSSSP with WithObserver; this remains the implementation
// behind it.
func SSSPContext(ctx context.Context, g *graphmat.Graph[float32, float32], src uint32, cfg graphmat.Config, ws *graphmat.Workspace[float32, float32], obs Observer) ([]float32, graphmat.Stats, error) {
	g.SetAllProps(InfDist)
	g.SetProp(src, 0)
	g.ClearActive()
	g.SetActive(src)
	stats, err := graphmat.RunContext(ctx, g, SSSPProgram{}, cfg, ws, newSession(obs).options()...)
	dist := make([]float32, g.NumVertices())
	for v := range dist {
		dist[v] = g.Prop(uint32(v))
	}
	return dist, stats, err
}
