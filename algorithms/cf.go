package algorithms

import (
	"context"

	"graphmat"
	"graphmat/internal/gen"
)

// LatentDim is K, the latent feature dimension of the collaborative
// filtering model (equation (3)). A fixed-size array keeps messages and
// reduced values allocation-free on the SpMV hot path.
const LatentDim = 20

// CFVec is one latent factor vector p_u (or p_v).
type CFVec [LatentDim]float32

// CFProgram implements one gradient-descent sweep of the paper's equations
// (4)–(6): every vertex (user or item) broadcasts its factor vector; a
// receiver with rating G_uv computes the error e_uv = G_uv − p_uᵀp_v against
// its *own* vector — destination state access again (§4.2) — and accumulates
// e_uv·p_other; Apply takes the gradient step.
type CFProgram struct {
	// Gamma is the learning rate γ.
	Gamma float32
	// Lambda is the regularization weight λ.
	Lambda float32
}

// SendMessage broadcasts the current factor vector.
func (CFProgram) SendMessage(_ graphmat.VertexID, prop CFVec) (CFVec, bool) { return prop, true }

// ProcessMessage computes e_uv · p_sender for one rating edge.
func (CFProgram) ProcessMessage(m CFVec, rating float32, dst CFVec) CFVec {
	var dot float32
	for k := 0; k < LatentDim; k++ {
		dot += m[k] * dst[k]
	}
	e := rating - dot
	var out CFVec
	for k := 0; k < LatentDim; k++ {
		out[k] = e * m[k]
	}
	return out
}

// Reduce sums gradient contributions elementwise.
func (CFProgram) Reduce(a, b CFVec) CFVec {
	for k := 0; k < LatentDim; k++ {
		a[k] += b[k]
	}
	return a
}

// Apply takes the gradient-descent step p ← p + γ(Σ e·p_other − λp).
func (p CFProgram) Apply(r CFVec, _ graphmat.VertexID, prop *CFVec) bool {
	for k := 0; k < LatentDim; k++ {
		prop[k] += p.Gamma * (r[k] - p.Lambda*prop[k])
	}
	return true
}

// Direction scatters along out-edges; the CF graph builder symmetrizes the
// bipartite ratings so factors flow user→item and item→user each sweep.
func (CFProgram) Direction() graphmat.Direction { return graphmat.Out }

// CFOptions configures a collaborative filtering run.
type CFOptions struct {
	Gamma      float32 // 0 means 0.001
	Lambda     float32 // 0 means 0.05
	Iterations int     // 0 means 10
	InitSeed   uint64  // factor initialization seed
	Config     graphmat.Config
}

func (o CFOptions) withDefaults() CFOptions {
	if o.Gamma == 0 {
		o.Gamma = 0.001
	}
	if o.Lambda == 0 {
		o.Lambda = 0.05
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	return o
}

// NewCFGraph builds the CF property graph from user→item rating triples
// (users ids [0, users), item ids [users, n)): self-loops removed and the
// bipartite edges mirrored so each rating is traversable in both directions
// (§5.1: "for collaborative filtering, the graphs have to be bipartite").
// The input is consumed.
func NewCFGraph(ratings *graphmat.COO[float32], partitions int) (*graphmat.Graph[CFVec, float32], error) {
	ratings.RemoveSelfLoops()
	ratings.SortRowMajor()
	ratings.DedupKeepFirst()
	ratings.Symmetrize()
	return graphmat.New[CFVec](ratings, graphmat.Options{Partitions: partitions})
}

// CF runs gradient-descent matrix factorization and returns the factor
// vectors indexed by vertex id (users then items). Factors are
// (re)initialized deterministically from InitSeed.
func CF(g *graphmat.Graph[CFVec, float32], opt CFOptions) ([]CFVec, graphmat.Stats) {
	out, stats, err := CFContext(context.Background(), g, opt, nil)
	if err != nil {
		panic(err) // contextless run with no observer cannot fail
	}
	return out, stats
}

// CFContext is CF as a cancelable, observable session: the sweep loop runs
// as one engine run, so observers see real iteration numbers. A stopped run
// returns the factors as of the stop together with the stop cause.
func CFContext(ctx context.Context, g *graphmat.Graph[CFVec, float32], opt CFOptions, obs Observer) ([]CFVec, graphmat.Stats, error) {
	opt = opt.withDefaults()
	rng := gen.NewRNG(opt.InitSeed)
	props := g.Props()
	for v := range props {
		for k := 0; k < LatentDim; k++ {
			// Small positive init keeps early gradients tame, matching
			// common MF practice.
			props[v][k] = float32(rng.Float64()) * 0.1
		}
	}
	g.SetAllActive()
	cfg := opt.Config
	cfg.MaxIterations = opt.Iterations
	sess := newSession(obs)
	stats, err := graphmat.RunContext(ctx, g, CFProgram{Gamma: opt.Gamma, Lambda: opt.Lambda}, cfg, nil, sess.options()...)
	out := make([]CFVec, len(props))
	copy(out, props)
	return out, stats, err
}
