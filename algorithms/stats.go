package algorithms

import (
	"time"

	"graphmat"
)

// Observer is a per-superstep progress callback, shared by every algorithm's
// Context variant; a non-nil error return stops the run (the engine reports
// reason StoppedByObserver). Iteration numbers count the algorithm's global
// supersteps, even for algorithms that drive the engine one superstep (or
// one phase) at a time.
type Observer = graphmat.Observer

// accumulate folds one superstep's engine stats into a running total (the
// multi-run accumulation every iterative driver repeats). Reason is per-run
// and is set by the driver, not summed.
func accumulate(dst *graphmat.Stats, s graphmat.Stats) {
	dst.Iterations += s.Iterations
	dst.MessagesSent += s.MessagesSent
	dst.EdgesProcessed += s.EdgesProcessed
	dst.Applies += s.Applies
	dst.ActiveSum += s.ActiveSum
	dst.ColumnsProbed += s.ColumnsProbed
	dst.PushSupersteps += s.PushSupersteps
	dst.PullSupersteps += s.PullSupersteps
	dst.Sched.Workers = s.Sched.Workers
	dst.Sched.Tasks += s.Sched.Tasks
	dst.Sched.Steals += s.Sched.Steals
	dst.Sched.BusyNS += s.Sched.BusyNS
}

// session adapts a caller's observer to a driver loop that invokes the
// engine repeatedly (PageRank's one-superstep-at-a-time loop, HITS's
// half-steps, the triangle phases): each engine call restarts its iteration
// count and wall clock, so the session rewrites IterationInfo.Iteration into
// the global superstep number and Total into time since the session began.
type session struct {
	obs   Observer
	step  int
	start time.Time
}

func newSession(obs Observer) *session {
	return &session{obs: obs, start: time.Now()}
}

// options returns the engine options for the next engine call: nil when no
// observer is attached, otherwise a renumbering wrapper.
func (s *session) options() []graphmat.RunOption {
	if s.obs == nil {
		return nil
	}
	return []graphmat.RunOption{graphmat.WithObserver(func(info graphmat.IterationInfo) error {
		s.step++
		info.Iteration = s.step
		info.Total = time.Since(s.start)
		return s.obs(info)
	})}
}
