package algorithms

import "graphmat"

// accumulate folds one superstep's engine stats into a running total (the
// multi-run accumulation every iterative driver repeats).
func accumulate(dst *graphmat.Stats, s graphmat.Stats) {
	dst.Iterations += s.Iterations
	dst.MessagesSent += s.MessagesSent
	dst.EdgesProcessed += s.EdgesProcessed
	dst.Applies += s.Applies
	dst.ActiveSum += s.ActiveSum
	dst.ColumnsProbed += s.ColumnsProbed
}
