package algorithms

import (
	"context"
	"sort"

	"graphmat"
)

// TCVertex is the triangle-counting vertex state: the sorted list of
// in-neighbor ids collected in phase one, and this vertex's triangle tally
// from phase two.
type TCVertex struct {
	Nbrs  []uint32
	Count int64
}

// tcPhase1 is the paper's first TC vertex program (§4.2): "each vertex sends
// out its id, and at the end stores a list of all its incoming neighbor
// id's in its local state".
type tcPhase1 struct{}

func (tcPhase1) SendMessage(v graphmat.VertexID, _ TCVertex) (uint32, bool) { return v, true }

func (tcPhase1) ProcessMessage(m uint32, _ float32, _ TCVertex) []uint32 { return []uint32{m} }

func (tcPhase1) Reduce(a, b []uint32) []uint32 { return append(a, b...) }

func (tcPhase1) Apply(r []uint32, _ graphmat.VertexID, prop *TCVertex) bool {
	sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
	prop.Nbrs = r
	return false
}

func (tcPhase1) Direction() graphmat.Direction { return graphmat.Out }

// tcPhase2 is the second program: "each vertex simply sends out this list to
// all neighbors, and each vertex intersects each incoming list with its own
// list to find triangles". The intersection reads the *destination* vertex
// state in ProcessMessage — the expressiveness GraphMat adds over pure
// semiring frameworks (§4.2).
type tcPhase2 struct{}

func (tcPhase2) SendMessage(_ graphmat.VertexID, prop TCVertex) ([]uint32, bool) {
	if len(prop.Nbrs) == 0 {
		return nil, false
	}
	return prop.Nbrs, true
}

func (tcPhase2) ProcessMessage(m []uint32, _ float32, dst TCVertex) int64 {
	return intersectCount(m, dst.Nbrs)
}

func (tcPhase2) Reduce(a, b int64) int64 { return a + b }

func (tcPhase2) Apply(r int64, _ graphmat.VertexID, prop *TCVertex) bool {
	prop.Count = r
	return false
}

func (tcPhase2) Direction() graphmat.Direction { return graphmat.Out }

// intersectCount counts common elements of two ascending-sorted slices.
func intersectCount(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// NewTriangleGraph builds the TC property graph with the paper's
// preprocessing (§5.1): self-loops removed, edges symmetrized, then the
// lower triangle discarded so the graph is a DAG with every edge u→v
// satisfying u < v. The input is consumed.
func NewTriangleGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[TCVertex, float32], error) {
	adj.RemoveSelfLoops()
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	adj.Symmetrize()
	adj.UpperTriangle()
	return graphmat.New[TCVertex](adj, graphmat.Options{Partitions: partitions})
}

// NewTriangleStore is NewTriangleGraph as a versioned store: the same
// preprocessing and epoch-0 graph, plus live edge updates via ApplyEdges.
func NewTriangleStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[TCVertex, float32], error) {
	adj.RemoveSelfLoops()
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	adj.Symmetrize()
	adj.UpperTriangle()
	return graphmat.NewStore[TCVertex](adj, graphmat.Options{Partitions: partitions})
}

// TriangleCount runs the two-phase vertex-program pipeline and returns the
// number of triangles. Vertex state is reinitialized, so the graph is
// reusable across runs.
//
// Deprecated: use RunTriangleCount.
func TriangleCount(g *graphmat.Graph[TCVertex, float32], cfg graphmat.Config) (int64, graphmat.Stats) {
	scratch := NewTriangleScratch(int(g.NumVertices()), cfg.Vector)
	count, stats, err := TriangleCountWithWorkspace(g, cfg, scratch)
	if err != nil {
		panic(err) // scratch built for this graph and config above
	}
	return count, stats
}

// TriangleScratch is the reusable engine scratch for the two-phase triangle
// pipeline: the phases carry different message types, so each needs its own
// workspace.
type TriangleScratch struct {
	Phase1 *graphmat.Workspace[uint32, []uint32]
	Phase2 *graphmat.Workspace[[]uint32, int64]
}

// NewTriangleScratch allocates scratch for n-vertex triangle graphs.
func NewTriangleScratch(n int, kind graphmat.VectorKind) *TriangleScratch {
	return &TriangleScratch{
		Phase1: graphmat.NewWorkspace[uint32, []uint32](n, kind),
		Phase2: graphmat.NewWorkspace[[]uint32, int64](n, kind),
	}
}

// Reset clears both phase workspaces (pool recycling).
func (s *TriangleScratch) Reset() {
	s.Phase1.Reset()
	s.Phase2.Reset()
}

// TriangleCountWithWorkspace is TriangleCount with caller-managed scratch
// for repeated counts on one graph.
//
// Deprecated: use RunTriangleCount with WithWorkspace.
func TriangleCountWithWorkspace(g *graphmat.Graph[TCVertex, float32], cfg graphmat.Config, scratch *TriangleScratch) (int64, graphmat.Stats, error) {
	return TriangleCountContext(context.Background(), g, cfg, scratch, nil)
}

// TriangleCountContext is TriangleCount as a cancelable, observable session.
// The observer sees one report per phase (the pipeline is two one-superstep
// vertex programs). A stopped run returns count 0 with the stop cause.
//
// Deprecated: use RunTriangleCount with WithObserver; this remains the
// implementation behind it.
func TriangleCountContext(ctx context.Context, g *graphmat.Graph[TCVertex, float32], cfg graphmat.Config, scratch *TriangleScratch, obs Observer) (int64, graphmat.Stats, error) {
	g.SetAllProps(TCVertex{})
	g.SetAllActive()
	cfg.MaxIterations = 1
	sess := newSession(obs)
	stats, err := graphmat.RunContext(ctx, g, tcPhase1{}, cfg, scratch.Phase1, sess.options()...)
	if err != nil {
		return 0, stats, err
	}

	g.SetAllActive()
	s2, err := graphmat.RunContext(ctx, g, tcPhase2{}, cfg, scratch.Phase2, sess.options()...)
	accumulate(&stats, s2)
	if err != nil {
		stats.Reason = s2.Reason
		return 0, stats, err
	}
	// Both fixed one-superstep phases ran to completion: the pipeline is
	// done, which for this driver is convergence.
	stats.Reason = graphmat.Converged

	var total int64
	for v := uint32(0); v < g.NumVertices(); v++ {
		total += g.Prop(v).Count
	}
	return total, stats, nil
}
