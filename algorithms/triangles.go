package algorithms

import (
	"sort"

	"graphmat"
)

// TCVertex is the triangle-counting vertex state: the sorted list of
// in-neighbor ids collected in phase one, and this vertex's triangle tally
// from phase two.
type TCVertex struct {
	Nbrs  []uint32
	Count int64
}

// tcPhase1 is the paper's first TC vertex program (§4.2): "each vertex sends
// out its id, and at the end stores a list of all its incoming neighbor
// id's in its local state".
type tcPhase1 struct{}

func (tcPhase1) SendMessage(v graphmat.VertexID, _ TCVertex) (uint32, bool) { return v, true }

func (tcPhase1) ProcessMessage(m uint32, _ float32, _ TCVertex) []uint32 { return []uint32{m} }

func (tcPhase1) Reduce(a, b []uint32) []uint32 { return append(a, b...) }

func (tcPhase1) Apply(r []uint32, _ graphmat.VertexID, prop *TCVertex) bool {
	sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
	prop.Nbrs = r
	return false
}

func (tcPhase1) Direction() graphmat.Direction { return graphmat.Out }

// tcPhase2 is the second program: "each vertex simply sends out this list to
// all neighbors, and each vertex intersects each incoming list with its own
// list to find triangles". The intersection reads the *destination* vertex
// state in ProcessMessage — the expressiveness GraphMat adds over pure
// semiring frameworks (§4.2).
type tcPhase2 struct{}

func (tcPhase2) SendMessage(_ graphmat.VertexID, prop TCVertex) ([]uint32, bool) {
	if len(prop.Nbrs) == 0 {
		return nil, false
	}
	return prop.Nbrs, true
}

func (tcPhase2) ProcessMessage(m []uint32, _ float32, dst TCVertex) int64 {
	return intersectCount(m, dst.Nbrs)
}

func (tcPhase2) Reduce(a, b int64) int64 { return a + b }

func (tcPhase2) Apply(r int64, _ graphmat.VertexID, prop *TCVertex) bool {
	prop.Count = r
	return false
}

func (tcPhase2) Direction() graphmat.Direction { return graphmat.Out }

// intersectCount counts common elements of two ascending-sorted slices.
func intersectCount(a, b []uint32) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// NewTriangleGraph builds the TC property graph with the paper's
// preprocessing (§5.1): self-loops removed, edges symmetrized, then the
// lower triangle discarded so the graph is a DAG with every edge u→v
// satisfying u < v. The input is consumed.
func NewTriangleGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[TCVertex, float32], error) {
	adj.RemoveSelfLoops()
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	adj.Symmetrize()
	adj.UpperTriangle()
	return graphmat.New[TCVertex](adj, graphmat.Options{Partitions: partitions})
}

// TriangleCount runs the two-phase vertex-program pipeline and returns the
// number of triangles. Vertex state is reinitialized, so the graph is
// reusable across runs.
func TriangleCount(g *graphmat.Graph[TCVertex, float32], cfg graphmat.Config) (int64, graphmat.Stats) {
	g.SetAllProps(TCVertex{})
	g.SetAllActive()
	cfg.MaxIterations = 1
	stats := graphmat.Run(g, tcPhase1{}, cfg)

	g.SetAllActive()
	s2 := graphmat.Run(g, tcPhase2{}, cfg)
	stats.EdgesProcessed += s2.EdgesProcessed
	stats.MessagesSent += s2.MessagesSent
	stats.Applies += s2.Applies
	stats.ActiveSum += s2.ActiveSum
	stats.ColumnsProbed += s2.ColumnsProbed
	stats.Iterations += s2.Iterations

	var total int64
	for v := uint32(0); v < g.NumVertices(); v++ {
		total += g.Prop(v).Count
	}
	return total, stats
}
