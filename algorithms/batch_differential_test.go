package algorithms

import (
	"context"
	"testing"

	"graphmat"
	"graphmat/internal/gen"
)

// The batch-layer differential — the tentpole's acceptance bar: for EVERY
// batchable algorithm × {Pull, Push, Auto} × {as-built graph, delta-overlay
// snapshot}, a k-source RunBatch must be bit-identical per source to k
// single-source Run calls. The scalar engine is the oracle (its own
// differential suite pins it across modes), so one scalar sweep per source
// serves as the reference for every batched mode.

func TestBatchDifferentialAllModes(t *testing.T) {
	baseAdj := gen.RMAT(gen.RMATOptions{Scale: 10, EdgeFactor: 8, Seed: 42, MaxWeight: 10})
	n := baseAdj.NRows
	batches := updateBatches(n)

	master := baseAdj.Clone()
	graphmat.NormalizeAdjacency(master, 0)
	var err error
	for _, b := range batches {
		if master, err = graphmat.ApplyToAdjacency(master, b); err != nil {
			t.Fatal(err)
		}
	}
	lookup := NewRawEdgeLookup(master)

	sources := []uint32{0, 1, 3, 17, 42, 100, 255, 511, 700, 900, 1023, 2}
	batchParams := map[string]Params{
		"bfs":          {Sources: sources},
		"sssp":         {Sources: sources},
		"ppr":          {Sources: sources, Iterations: 15},
		"reachability": {Sources: sources},
		"widest":       {Sources: sources},
	}

	for _, algo := range Names() {
		spec, _ := Lookup(algo)
		bp, batchable := batchParams[algo]
		if spec.Batchable != batchable {
			t.Fatalf("%s: Batchable=%v but differential matrix says %v", algo, spec.Batchable, batchable)
		}
		if !batchable {
			// Non-batchable algorithms must refuse cleanly.
			inst, err := spec.Build(baseAdj.Clone(), 4)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inst.RunBatch(context.Background(), Params{}, nil); err != ErrBatchUnsupported {
				t.Fatalf("%s: RunBatch error = %v, want ErrBatchUnsupported", algo, err)
			}
			continue
		}
		t.Run(algo, func(t *testing.T) {
			// Two property-graph states: the as-built base and a snapshot
			// with applied update batches still living in the delta overlay.
			base, err := spec.Build(baseAdj.Clone(), 6)
			if err != nil {
				t.Fatal(err)
			}
			updated, err := spec.Build(baseAdj.Clone(), 6)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if _, err := updated.ApplyUpdates(b, lookup); err != nil {
					t.Fatal(err)
				}
			}
			if st := updated.StoreStats(); st.Compactions != 0 {
				t.Fatalf("updates unexpectedly compacted away the overlay: %+v", st)
			}
			for name, inst := range map[string]Instance{"base": base, "overlay": updated} {
				wantEpoch := inst.Epoch()
				// Scalar oracle: one single-source run per source.
				oracle := make([][]float64, len(sources))
				for i, src := range sources {
					sp := bp
					sp.Sources = nil
					sp.Source = src
					res, err := inst.Run(sp, nil)
					if err != nil {
						t.Fatal(err)
					}
					oracle[i] = res.Values
				}
				for _, mode := range []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto} {
					p := bp
					p.Mode = mode
					got, err := inst.RunBatch(context.Background(), p, nil)
					if err != nil {
						t.Fatal(err)
					}
					if got.Epoch != wantEpoch {
						t.Fatalf("%s mode %s: batch epoch %d, want %d", name, mode, got.Epoch, wantEpoch)
					}
					if len(got.Values) != len(sources) {
						t.Fatalf("%s mode %s: %d value series for %d sources", name, mode, len(got.Values), len(sources))
					}
					for i := range sources {
						if len(got.Values[i]) != len(oracle[i]) {
							t.Fatalf("%s mode %s source %d: series length %d vs %d", name, mode, sources[i], len(got.Values[i]), len(oracle[i]))
						}
						for v := range oracle[i] {
							if got.Values[i][v] != oracle[i][v] {
								t.Fatalf("%s mode %s source %d: value[%d] = %v, want %v",
									name, mode, sources[i], v, got.Values[i][v], oracle[i][v])
							}
						}
					}
				}
			}
		})
	}
}

// TestBatchWideSplit runs a batch wider than one block (k > 64), asserting
// the word-sized chunking reassembles per-source results in order.
func TestBatchWideSplit(t *testing.T) {
	adj := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 3, MaxWeight: 7})
	g, err := NewBFSGraph(adj, 4)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]uint32, 100)
	for i := range sources {
		sources[i] = uint32((i * 37) % 256)
	}
	dists, _, err := RunBFSBatch(context.Background(), g, sources)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range sources {
		oracle, _, err := RunBFS(context.Background(), g, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range oracle {
			if dists[i][v] != oracle[v] {
				t.Fatalf("source %d (batch index %d): dist[%d] = %d, want %d", src, i, v, dists[i][v], oracle[v])
			}
		}
	}
}
