package algorithms

import (
	"context"

	"graphmat"
)

// CCProgram is a label-propagation connected-components vertex program (an
// extension beyond the paper's five algorithms, exercising the same min-
// plus traversal pattern as BFS): every vertex broadcasts its component
// label, receivers keep the minimum, and the run converges when labels stop
// changing.
type CCProgram struct{}

// SendMessage broadcasts the current label.
func (CCProgram) SendMessage(_ graphmat.VertexID, prop uint32) (uint32, bool) { return prop, true }

// ProcessMessage passes the label through.
func (CCProgram) ProcessMessage(m uint32, _ float32, _ uint32) uint32 { return m }

// Reduce keeps the smaller label.
func (CCProgram) Reduce(a, b uint32) uint32 { return min(a, b) }

// Apply adopts a smaller label and reactivates.
func (CCProgram) Apply(r uint32, _ graphmat.VertexID, prop *uint32) bool {
	if r < *prop {
		*prop = r
		return true
	}
	return false
}

// Direction scatters along out-edges of the symmetrized graph.
func (CCProgram) Direction() graphmat.Direction { return graphmat.Out }

// ProcessIgnoresDst declares that ProcessMessage never reads the
// destination property, enabling the backend's fast path.
func (CCProgram) ProcessIgnoresDst() {}

// NewCCGraph builds the connected-components graph: self-loops removed and
// the edge set symmetrized so components are those of the underlying
// undirected graph. The input is consumed.
func NewCCGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[uint32, float32], error) {
	adj.RemoveSelfLoops()
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	adj.Symmetrize()
	return graphmat.New[uint32](adj, graphmat.Options{Partitions: partitions})
}

// NewCCStore is NewCCGraph as a versioned store: the same preprocessing and
// epoch-0 graph, plus live edge updates via ApplyEdges.
func NewCCStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[uint32, float32], error) {
	adj.RemoveSelfLoops()
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	adj.Symmetrize()
	return graphmat.NewStore[uint32](adj, graphmat.Options{Partitions: partitions})
}

// ConnectedComponents labels every vertex with the smallest vertex id in its
// component.
//
// Deprecated: use RunConnectedComponents.
func ConnectedComponents(g *graphmat.Graph[uint32, float32], cfg graphmat.Config) ([]uint32, graphmat.Stats) {
	ws := graphmat.NewWorkspace[uint32, uint32](int(g.NumVertices()), cfg.Vector)
	labels, stats, err := ConnectedComponentsWithWorkspace(g, cfg, ws)
	if err != nil {
		panic(err) // workspace built for this graph and config above
	}
	return labels, stats
}

// ConnectedComponentsWithWorkspace is ConnectedComponents with
// caller-managed engine scratch for repeated runs on one graph.
//
// Deprecated: use RunConnectedComponents with WithWorkspace.
func ConnectedComponentsWithWorkspace(g *graphmat.Graph[uint32, float32], cfg graphmat.Config, ws *graphmat.Workspace[uint32, uint32]) ([]uint32, graphmat.Stats, error) {
	return ConnectedComponentsContext(context.Background(), g, cfg, ws, nil)
}

// ConnectedComponentsContext is ConnectedComponents as a cancelable,
// observable session; see BFSContext for the contract. A stopped run returns
// the partially propagated labels.
//
// Deprecated: use RunConnectedComponents with WithObserver; this remains
// the implementation behind it.
func ConnectedComponentsContext(ctx context.Context, g *graphmat.Graph[uint32, float32], cfg graphmat.Config, ws *graphmat.Workspace[uint32, uint32], obs Observer) ([]uint32, graphmat.Stats, error) {
	g.InitProps(func(v uint32) uint32 { return v })
	g.SetAllActive()
	stats, err := graphmat.RunContext(ctx, g, CCProgram{}, cfg, ws, newSession(obs).options()...)
	labels := make([]uint32, g.NumVertices())
	for v := range labels {
		labels[v] = g.Prop(uint32(v))
	}
	return labels, stats, err
}

// DegreeProgram counts arriving messages: run for one superstep with all
// vertices active it computes in-degrees (the Figure 1 SpMV example made a
// vertex program).
type DegreeProgram struct {
	// Dir selects which degree is computed: graphmat.Out counts in-degree
	// (messages travel along out-edges), graphmat.In counts out-degree,
	// graphmat.Both counts total degree.
	Dir graphmat.Direction
}

// SendMessage emits a unit count.
func (DegreeProgram) SendMessage(_ graphmat.VertexID, _ uint32) (uint32, bool) { return 1, true }

// ProcessMessage passes the count through.
func (DegreeProgram) ProcessMessage(m uint32, _ float32, _ uint32) uint32 { return m }

// Reduce sums counts.
func (DegreeProgram) Reduce(a, b uint32) uint32 { return a + b }

// Apply stores the tally.
func (DegreeProgram) Apply(r uint32, _ graphmat.VertexID, prop *uint32) bool {
	*prop = r
	return false
}

// Direction reports the configured scatter direction.
func (p DegreeProgram) Direction() graphmat.Direction {
	if p.Dir == 0 {
		return graphmat.Out
	}
	return p.Dir
}

// ProcessIgnoresDst declares that ProcessMessage never reads the
// destination property, enabling the backend's fast path.
func (DegreeProgram) ProcessIgnoresDst() {}

// Degrees runs DegreeProgram for one superstep and returns the per-vertex
// counts.
func Degrees(g *graphmat.Graph[uint32, float32], dir graphmat.Direction, cfg graphmat.Config) ([]uint32, graphmat.Stats) {
	g.SetAllProps(0)
	g.SetAllActive()
	cfg.MaxIterations = 1
	stats, _ := graphmat.Run(g, DegreeProgram{Dir: dir}, cfg) // contextless Run cannot fail
	deg := make([]uint32, g.NumVertices())
	for v := range deg {
		deg[v] = g.Prop(uint32(v))
	}
	return deg, stats
}
