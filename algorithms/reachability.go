package algorithms

import (
	"context"

	"graphmat"
)

// ReachabilityProgram is directed reachability over the boolean (OR, AND)
// semiring: a vertex's property is 1 once any path from the source hits it,
// 0 otherwise. It is BFS with the hop count dropped — the first workload
// registered purely through the semiring surface rather than a numeric
// recurrence, and the cheapest multi-source block citizen (one uint32 per
// (vertex, source) pair, convergence as soon as the reachable set closes).
type ReachabilityProgram struct{}

// SendMessage emits the reached flag; only reached vertices are ever active.
func (ReachabilityProgram) SendMessage(_ graphmat.VertexID, prop uint32) (uint32, bool) {
	return prop, true
}

// ProcessMessage is the semiring AND: reached × edge-exists = reached.
func (ReachabilityProgram) ProcessMessage(m uint32, _ float32, _ uint32) uint32 { return m }

// Reduce is the semiring OR.
func (ReachabilityProgram) Reduce(a, b uint32) uint32 { return a | b }

// Apply adopts reachability exactly once per vertex; a vertex already
// reached never reactivates, which is what terminates the traversal.
func (ReachabilityProgram) Apply(r uint32, _ graphmat.VertexID, prop *uint32) bool {
	if r != 0 && *prop == 0 {
		*prop = 1
		return true
	}
	return false
}

// Mul is ProcessMessage as a destination-free semiring multiply.
func (ReachabilityProgram) Mul(m uint32, _ float32) uint32 { return m }

// Add is Reduce under its semiring name.
func (ReachabilityProgram) Add(a, b uint32) uint32 { return a | b }

// Identity is the OR fold's neutral element.
func (ReachabilityProgram) Identity() uint32 { return 0 }

// Direction follows out-edges: directed reachability.
func (ReachabilityProgram) Direction() graphmat.Direction { return graphmat.Out }

// ProcessIgnoresDst declares the fast path.
func (ReachabilityProgram) ProcessIgnoresDst() {}

// NewReachabilityGraph builds the reachability property graph: self-loops
// removed, directed edges kept as-is. The input is consumed.
func NewReachabilityGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[uint32, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.New[uint32](adj, graphmat.Options{Partitions: partitions})
}

// NewReachabilityStore is NewReachabilityGraph as a versioned store.
func NewReachabilityStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[uint32, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.NewStore[uint32](adj, graphmat.Options{Partitions: partitions})
}

// RunReachability computes the set of vertices reachable from src along
// directed edges: out[v] is 1 if reachable, 0 otherwise (src itself is 1).
// Options: WithConfig/WithThreads/WithMode, WithWorkspace
// (*graphmat.Workspace[uint32, uint32]), WithObserver.
func RunReachability(ctx context.Context, g *graphmat.Graph[uint32, float32], src uint32, opts ...Option) ([]uint32, graphmat.Stats, error) {
	set := newSettings(opts)
	ws, err := settingsWorkspace[uint32, uint32](int(g.NumVertices()), set)
	if err != nil {
		return nil, graphmat.Stats{}, err
	}
	g.SetAllProps(0)
	g.SetProp(src, 1)
	g.ClearActive()
	g.SetActive(src)
	stats, err := graphmat.RunContext(ctx, g, ReachabilityProgram{}, set.cfg, ws, newSession(set.obs).options()...)
	reached := make([]uint32, g.NumVertices())
	for v := range reached {
		reached[v] = g.Prop(uint32(v))
	}
	return reached, stats, err
}
