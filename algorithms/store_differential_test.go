package algorithms

import (
	"testing"

	"graphmat"
	"graphmat/internal/gen"
)

// The registry-level differential for the versioned store — the ISSUE's
// acceptance bar: for EVERY registered algorithm × {Pull, Push, Auto},
// results on a snapshot with applied insert+delete batches must be
// bit-identical to a fresh Build of the equivalent raw edge set. This goes
// through each algorithm's own update translation (directed, symmetrized,
// upper-triangle), so symmetrization corner cases — deleting one direction
// of a mutually linked pair, inserting where only the reversal existed —
// are exercised where they bite.

// updateBatches returns raw batches hitting the translation corner cases on
// the scale-10 RMAT golden (n = 1024).
func updateBatches(n uint32) [][]EdgeUpdate {
	return [][]EdgeUpdate{
		{
			{Src: 0, Dst: n - 1, Val: 2},
			{Src: n - 1, Dst: 0, Val: 3}, // mutual pair, distinct weights
			{Src: 5, Dst: 5, Val: 1},     // self-loop: dropped everywhere
			{Src: 17, Dst: 900, Val: 4},  // fresh edge into a quiet region
			{Src: 1, Dst: 2, Val: 9},     // likely upsert of a hub edge
		},
		{
			{Src: 0, Dst: n - 1, Del: true}, // delete one direction of the pair
			{Src: 17, Dst: 900, Del: true},  // delete a just-inserted edge
			{Src: 800, Dst: 801, Val: 5},
			{Src: 801, Dst: 800, Del: true}, // delete where only reversal exists
			{Src: 3, Dst: 700, Val: 6},
			{Src: 3, Dst: 700, Del: true},
			{Src: 3, Dst: 700, Val: 7}, // churn within one batch: last wins
		},
	}
}

// applyRawBrute computes the equivalent raw edge set after batches.
func applyRawBrute(adj *graphmat.COO[float32], batches [][]EdgeUpdate) *graphmat.COO[float32] {
	type key struct{ s, d uint32 }
	norm := adj.Clone()
	graphmat.NormalizeAdjacency(norm, 1)
	live := map[key]float32{}
	var order []key
	for _, t := range norm.Entries {
		k := key{t.Row, t.Col}
		live[k] = t.Val
		order = append(order, k)
	}
	for _, b := range batches {
		for _, u := range b {
			k := key{u.Src, u.Dst}
			if u.Del {
				delete(live, k)
				continue
			}
			if _, ok := live[k]; !ok {
				order = append(order, k)
			}
			live[k] = u.Val
		}
	}
	out := graphmat.NewCOO[float32](adj.NRows)
	for _, k := range order {
		if v, ok := live[k]; ok {
			out.Add(k.s, k.d, v)
			delete(live, k)
		}
	}
	return out
}

func sameResult(t *testing.T, what string, ref, got Result) {
	t.Helper()
	sameSeries(t, what+" values", ref.Values, got.Values)
	if len(ref.Series) != len(got.Series) {
		t.Fatalf("%s: series sets differ", what)
	}
	for name := range ref.Series {
		sameSeries(t, what+" series "+name, ref.Series[name], got.Series[name])
	}
	if (ref.Count == nil) != (got.Count == nil) || (ref.Count != nil && *got.Count != *ref.Count) {
		t.Fatalf("%s: count %v vs %v", what, got.Count, ref.Count)
	}
	if got.Stats.Iterations != ref.Stats.Iterations ||
		got.Stats.MessagesSent != ref.Stats.MessagesSent ||
		got.Stats.EdgesProcessed != ref.Stats.EdgesProcessed {
		t.Fatalf("%s: stats diverge: %+v vs %+v", what, got.Stats, ref.Stats)
	}
}

func TestStoreDifferentialAllAlgorithmsAllModes(t *testing.T) {
	baseAdj := gen.RMAT(gen.RMATOptions{Scale: 10, EdgeFactor: 8, Seed: 42, MaxWeight: 10})
	n := baseAdj.NRows
	batches := updateBatches(n)

	// The post-batch raw master every lookup consults — exactly what the
	// serving layer maintains.
	master := baseAdj.Clone()
	graphmat.NormalizeAdjacency(master, 0)
	var err error
	for _, b := range batches {
		if master, err = graphmat.ApplyToAdjacency(master, b); err != nil {
			t.Fatal(err)
		}
	}
	lookup := NewRawEdgeLookup(master)
	equivalent := applyRawBrute(baseAdj, batches)

	params := map[string]Params{
		"bfs":          {Source: 0},
		"sssp":         {Source: 0},
		"pagerank":     {Iterations: 15},
		"ppr":          {Sources: []uint32{0, 3}, Iterations: 15},
		"components":   {},
		"triangles":    {},
		"hits":         {Iterations: 10},
		"reachability": {Source: 0},
		"widest":       {Source: 0},
	}
	for _, algo := range Names() {
		p, ok := params[algo]
		if !ok {
			t.Fatalf("registered algorithm %q missing from the differential matrix", algo)
		}
		t.Run(algo, func(t *testing.T) {
			spec, _ := Lookup(algo)
			updated, err := spec.Build(baseAdj.Clone(), 6)
			if err != nil {
				t.Fatal(err)
			}
			for i, b := range batches {
				res, err := updated.ApplyUpdates(b, lookup)
				if err != nil {
					t.Fatal(err)
				}
				if res.Epoch != uint64(i+1) {
					t.Fatalf("batch %d produced epoch %d", i, res.Epoch)
				}
			}
			fresh, err := spec.Build(equivalent.Clone(), 6)
			if err != nil {
				t.Fatal(err)
			}
			if updated.NumEdges() != fresh.NumEdges() {
				t.Fatalf("edge counts diverge: updated %d vs fresh %d", updated.NumEdges(), fresh.NumEdges())
			}
			for _, mode := range []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto} {
				pm := p
				pm.Mode = mode
				refRes, err := fresh.Run(pm, nil)
				if err != nil {
					t.Fatal(err)
				}
				gotRes, err := updated.Run(pm, nil)
				if err != nil {
					t.Fatal(err)
				}
				if gotRes.Epoch != uint64(len(batches)) {
					t.Errorf("mode %s: run epoch %d, want %d", mode, gotRes.Epoch, len(batches))
				}
				sameResult(t, algo+" mode "+mode.String(), refRes, gotRes)
			}
		})
	}
}

// TestStoreDifferentialAfterCompaction re-checks one symmetrized and one
// directed algorithm after forcing heavy churn through the compaction path:
// the folded base must serve the same results as the overlay did.
func TestStoreDifferentialAfterCompaction(t *testing.T) {
	baseAdj := gen.RMAT(gen.RMATOptions{Scale: 9, EdgeFactor: 6, Seed: 7, MaxWeight: 5})
	n := baseAdj.NRows

	var batches [][]EdgeUpdate
	x := uint64(42)
	for i := 0; i < 8; i++ {
		var b []EdgeUpdate
		for j := 0; j < 200; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			b = append(b, EdgeUpdate{
				Src: uint32(x>>33) % n, Dst: uint32(x>>13) % n,
				Val: float32(i + 1), Del: x%4 == 0,
			})
		}
		batches = append(batches, b)
	}
	master := baseAdj.Clone()
	graphmat.NormalizeAdjacency(master, 0)
	equivalent := applyRawBrute(baseAdj, batches)

	for _, algo := range []string{"bfs", "pagerank"} {
		spec, _ := Lookup(algo)
		updated, err := spec.Build(baseAdj.Clone(), 5)
		if err != nil {
			t.Fatal(err)
		}
		m := master
		for _, b := range batches {
			if m, err = graphmat.ApplyToAdjacency(m, b); err != nil {
				t.Fatal(err)
			}
			if _, err := updated.ApplyUpdates(b, NewRawEdgeLookup(m)); err != nil {
				t.Fatal(err)
			}
		}
		if updated.StoreStats().Compactions == 0 {
			t.Fatalf("%s: churn did not trigger compaction: %+v", algo, updated.StoreStats())
		}
		fresh, err := spec.Build(equivalent.Clone(), 5)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Iterations: 10}
		refRes, err := fresh.Run(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := updated.Run(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, algo+" post-compaction", refRes, gotRes)
	}
}

// TestTranslateSymmetrizedValues pins the value-precedence rule: the
// original raw direction beats the replicated reversal, matching
// Symmetrize's keep-first semantics bit for bit.
func TestTranslateSymmetrizedValues(t *testing.T) {
	adj := graphmat.NewCOO[float32](8)
	adj.Add(1, 2, 10) // only forward raw edge
	graphmat.NormalizeAdjacency(adj, 1)

	// Delete (1,2) after inserting (2,1): property (1,2) must survive with
	// weight from the reversal.
	batch := []EdgeUpdate{{Src: 2, Dst: 1, Val: 20}, {Src: 1, Dst: 2, Del: true}}
	master, err := graphmat.ApplyToAdjacency(adj, batch)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := translateUpdates(updSymmetric, batch, NewRawEdgeLookup(master))
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]uint32]EdgeUpdate{
		{2, 1}: {Src: 2, Dst: 1, Val: 20},
		{1, 2}: {Src: 1, Dst: 2, Val: 20}, // reversal value, not deleted
	}
	for _, u := range prop {
		w, ok := want[[2]uint32{u.Src, u.Dst}]
		if !ok {
			continue
		}
		if u != w {
			t.Errorf("translated %+v, want %+v", u, w)
		}
		delete(want, [2]uint32{u.Src, u.Dst})
	}
	if len(want) != 0 {
		t.Errorf("missing translations: %v (got %v)", want, prop)
	}
	if _, err := translateUpdates(updSymmetric, batch, nil); err == nil {
		t.Error("symmetrized translation without a lookup accepted")
	}
	// Upper-triangle: the pair collapses onto (1,2) and stays live.
	tri, err := translateUpdates(updUpperTriangle, batch, NewRawEdgeLookup(master))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range tri {
		if u.Src > u.Dst {
			t.Errorf("upper-triangle translation emitted %+v", u)
		}
		if u.Src == 1 && u.Dst == 2 && (u.Del || u.Val != 20) {
			t.Errorf("upper-triangle (1,2) = %+v", u)
		}
	}
}
