package algorithms

import (
	"math"
	"testing"
	"testing/quick"

	"graphmat"
	"graphmat/internal/gen"
	"graphmat/internal/reference"
	"graphmat/internal/sparse"
)

// rmatEdges produces a deduplicated RMAT edge list for tests.
func rmatEdges(seed uint64, scale, ef, maxW int) *sparse.COO[float32] {
	c := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: ef, Seed: seed, MaxWeight: maxW})
	c.RemoveSelfLoops()
	c.SortRowMajor()
	c.DedupKeepFirst()
	return c
}

func TestPageRankMatchesReference(t *testing.T) {
	coo := rmatEdges(11, 8, 8, 0)
	refEdges := append([]sparse.Triple[float32](nil), coo.Entries...)
	n := coo.NRows

	g, err := NewPageRankGraph(coo, 4)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 20
	got, stats := PageRank(g, PageRankOptions{MaxIterations: iters, Config: graphmat.Config{Threads: 2}})
	want := reference.PageRank(n, refEdges, 0.15, iters)
	for v := uint32(0); v < n; v++ {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if stats.Iterations != iters {
		t.Errorf("Iterations = %d, want %d", stats.Iterations, iters)
	}
}

func TestPageRankConvergesWithTolerance(t *testing.T) {
	coo := rmatEdges(12, 7, 8, 0)
	g, err := NewPageRankGraph(coo, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, stats := PageRank(g, PageRankOptions{MaxIterations: 500, Tolerance: 1e-10})
	if stats.Iterations >= 500 {
		t.Errorf("did not converge in %d iterations", stats.Iterations)
	}
	if stats.Iterations < 5 {
		t.Errorf("converged suspiciously fast: %d iterations", stats.Iterations)
	}
}

func TestPageRankRanksAreProbabilistic(t *testing.T) {
	// On a strongly connected cycle, every vertex has identical rank 1.
	n := uint32(10)
	coo := sparse.NewCOO[float32](n, n)
	for v := uint32(0); v < n; v++ {
		coo.Add(v, (v+1)%n, 1)
	}
	g, err := NewPageRankGraph(coo, 2)
	if err != nil {
		t.Fatal(err)
	}
	ranks, _ := PageRank(g, PageRankOptions{MaxIterations: 50})
	for v, r := range ranks {
		if math.Abs(r-1) > 1e-9 {
			t.Errorf("cycle rank[%d] = %v, want 1", v, r)
		}
	}
}

func TestBFSMatchesReference(t *testing.T) {
	coo := rmatEdges(21, 8, 8, 0)
	g, err := NewBFSGraph(coo, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The reference must see the symmetrized edges the graph actually holds.
	sym := g.Adjacency()
	root := uint32(0)
	got, _ := BFS(g, root, graphmat.Config{Threads: 2})
	want := reference.BFS(g.NumVertices(), sym.Entries, root)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two disconnected pairs.
	coo := sparse.NewCOO[float32](4, 4)
	coo.Add(0, 1, 1)
	coo.Add(2, 3, 1)
	g, err := NewBFSGraph(coo, 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, _ := BFS(g, 0, graphmat.Config{})
	if dist[0] != 0 || dist[1] != 1 {
		t.Errorf("reachable distances wrong: %v", dist)
	}
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Errorf("unreachable distances wrong: %v", dist)
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	coo := rmatEdges(31, 8, 8, 10)
	g, err := NewSSSPGraph(coo, 4)
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Adjacency()
	got, _ := SSSP(g, 0, graphmat.Config{Threads: 2})
	want := reference.SSSP(g.NumVertices(), adj.Entries, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestTriangleCountMatchesReference(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 41, Params: gen.RMATTriangle})
	g, err := NewTriangleGraph(coo, 4)
	if err != nil {
		t.Fatal(err)
	}
	dag := g.Adjacency()
	got, _ := TriangleCount(g, graphmat.Config{Threads: 2})
	want := reference.Triangles(g.NumVertices(), dag.Entries)
	if got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
	if got == 0 {
		t.Fatal("test graph has no triangles; pick a denser seed")
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// K4 has 4 triangles.
	k4 := sparse.NewCOO[float32](4, 4)
	for i := uint32(0); i < 4; i++ {
		for j := uint32(0); j < 4; j++ {
			if i != j {
				k4.Add(i, j, 1)
			}
		}
	}
	g, err := NewTriangleGraph(k4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := TriangleCount(g, graphmat.Config{}); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	// A 4-cycle has none.
	c4 := sparse.NewCOO[float32](4, 4)
	for i := uint32(0); i < 4; i++ {
		c4.Add(i, (i+1)%4, 1)
	}
	g2, err := NewTriangleGraph(c4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := TriangleCount(g2, graphmat.Config{}); got != 0 {
		t.Errorf("C4 triangles = %d, want 0", got)
	}
}

func TestTriangleCountReusable(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 6, EdgeFactor: 8, Seed: 5, Params: gen.RMATTriangle})
	g, err := NewTriangleGraph(coo, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := TriangleCount(g, graphmat.Config{})
	b, _ := TriangleCount(g, graphmat.Config{})
	if a != b {
		t.Errorf("second run differs: %d vs %d", a, b)
	}
}

func TestCFLossDecreases(t *testing.T) {
	ratings := gen.Bipartite(gen.BipartiteOptions{Users: 300, Items: 40, Ratings: 5000, Seed: 7})
	ratings.SortRowMajor()
	ratings.DedupKeepFirst()
	ratingEdges := append([]sparse.Triple[float32](nil), ratings.Entries...)

	g, err := NewCFGraph(ratings, 4)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = math.Inf(1)
	for _, iters := range []int{1, 3, 6, 12} {
		factors, _ := CF(g, CFOptions{Iterations: iters, Gamma: 0.002, Lambda: 0.05, InitSeed: 1,
			Config: graphmat.Config{Threads: 2}})
		ff := make([][]float32, len(factors))
		for i := range factors {
			ff[i] = factors[i][:]
		}
		loss := reference.CFLoss(ratingEdges, ff, 0.05)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("loss diverged at %d iterations: %v", iters, loss)
		}
		if loss >= prev {
			t.Fatalf("loss did not decrease: %v -> %v at %d iterations", prev, loss, iters)
		}
		prev = loss
	}
}

func TestCFDeterministic(t *testing.T) {
	mk := func() []CFVec {
		ratings := gen.Bipartite(gen.BipartiteOptions{Users: 100, Items: 20, Ratings: 1000, Seed: 9})
		g, err := NewCFGraph(ratings, 3)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := CF(g, CFOptions{Iterations: 5, InitSeed: 42, Config: graphmat.Config{Threads: 2}})
		return f
	}
	a, b := mk(), mk()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("factors differ at vertex %d", v)
		}
	}
}

func TestConnectedComponentsMatchesReference(t *testing.T) {
	coo := rmatEdges(51, 8, 2, 0) // sparse: many components
	g, err := NewCCGraph(coo, 4)
	if err != nil {
		t.Fatal(err)
	}
	sym := g.Adjacency()
	got, _ := ConnectedComponents(g, graphmat.Config{Threads: 2})
	want := reference.ConnectedComponents(g.NumVertices(), sym.Entries)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestDegreesMatchGraph(t *testing.T) {
	coo := rmatEdges(61, 7, 4, 0)
	g, err := graphmat.New[uint32](coo, graphmat.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := Degrees(g, graphmat.Out, graphmat.Config{Threads: 2})
	for v := uint32(0); v < g.NumVertices(); v++ {
		if in[v] != g.InDegree(v) {
			t.Fatalf("indeg[%d] = %d, want %d", v, in[v], g.InDegree(v))
		}
	}
	out, _ := Degrees(g, graphmat.In, graphmat.Config{Threads: 2})
	for v := uint32(0); v < g.NumVertices(); v++ {
		if out[v] != g.OutDegree(v) {
			t.Fatalf("outdeg[%d] = %d, want %d", v, out[v], g.OutDegree(v))
		}
	}
}

// Property: SSSP distances from the engine match Dijkstra on random graphs
// across partition counts and thread counts.
func TestQuickSSSPAgainstDijkstra(t *testing.T) {
	f := func(seed uint64) bool {
		coo := rmatEdges(seed, 6, 4, 8)
		g, err := NewSSSPGraph(coo, 3)
		if err != nil {
			t.Fatal(err)
		}
		adj := g.Adjacency()
		got, _ := SSSP(g, 0, graphmat.Config{Threads: 2})
		want := reference.SSSP(g.NumVertices(), adj.Entries, 0)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: triangle counts match brute force on random skewed graphs.
func TestQuickTrianglesAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		coo := gen.RMAT(gen.RMATOptions{Scale: 6, EdgeFactor: 6, Seed: seed, Params: gen.RMATTriangle})
		g, err := NewTriangleGraph(coo, 3)
		if err != nil {
			t.Fatal(err)
		}
		dag := g.Adjacency()
		got, _ := TriangleCount(g, graphmat.Config{Threads: 2})
		return got == reference.Triangles(g.NumVertices(), dag.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: the sum of PageRank ranks is conserved at n on graphs with no
// sinks (every vertex has an out-edge), since rank mass only redistributes.
func TestQuickPageRankMassConservation(t *testing.T) {
	f := func(seed uint64) bool {
		n := uint32(128)
		coo := sparse.NewCOO[float32](n, n)
		rng := gen.NewRNG(seed)
		// Ring guarantees out-degree >= 1 everywhere; extra random edges.
		for v := uint32(0); v < n; v++ {
			coo.Add(v, (v+1)%n, 1)
		}
		for i := 0; i < 512; i++ {
			a, b := rng.Uint32n(n), rng.Uint32n(n)
			if a != b {
				coo.Add(a, b, 1)
			}
		}
		coo.SortRowMajor()
		coo.DedupKeepFirst()
		g, err := NewPageRankGraph(coo, 4)
		if err != nil {
			t.Fatal(err)
		}
		ranks, _ := PageRank(g, PageRankOptions{MaxIterations: 30, Config: graphmat.Config{Threads: 2}})
		sum := 0.0
		for _, r := range ranks {
			sum += r
		}
		return math.Abs(sum-float64(n)) < 1e-6*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
