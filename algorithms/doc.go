// Package algorithms provides the five graph algorithms of the GraphMat
// paper (§3) written as GraphMat vertex programs — PageRank, breadth-first
// search, single-source shortest paths, triangle counting and collaborative
// filtering — plus connected components and degree computation as
// extensions.
//
// Each algorithm exposes three layers:
//
//   - the Program type itself (e.g. SSSPProgram), for users composing their
//     own pipelines;
//   - a New*Graph constructor that applies the paper's dataset preprocessing
//     (§5.1) and builds the property graph;
//   - a runner (e.g. SSSP) that initializes vertex state, executes the
//     program and extracts results.
//
// Every runner also has a Context variant (e.g. SSSPContext) that executes
// as a cancelable, observable session: a context.Context stops the engine
// cooperatively mid-run, and an optional Observer receives one progress
// report per superstep — with iteration numbers counting the algorithm's
// global supersteps even for drivers that invoke the engine one superstep
// at a time. Stopped runs return their partial results alongside the stop
// cause, and Stats.Reason classifies every ending. The registry mirrors
// this: Instance.RunContext is the session form of Instance.Run.
//
// Every runner accepts the engine's kernel mode through its Config (and the
// registry's global "mode" parameter): Pull probes every stored column per
// superstep, Push iterates the frontier (a true SpMSpV), and Auto — the
// default — switches per superstep by frontier density against the
// configured PushThreshold. Modes are bit-identical in results and differ
// only in speed: push wins high-diameter, sparse-frontier traversals (BFS
// and SSSP on road networks, low-reach sources on scale-free graphs), pull
// wins dense iterative ranking (PageRank, PPR, HITS, where every vertex is
// active every superstep), and Auto tracks the winner, recording its choices
// in Stats.PushSupersteps/PullSupersteps.
//
// The benchmark harness builds graphs once and calls runners repeatedly, so
// graph construction time is excluded from measurements exactly as the paper
// excludes load time.
package algorithms
