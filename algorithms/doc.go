// Package algorithms provides the five graph algorithms of the GraphMat
// paper (§3) written as GraphMat vertex programs — PageRank, breadth-first
// search, single-source shortest paths, triangle counting and collaborative
// filtering — plus connected components and degree computation as
// extensions.
//
// Each algorithm exposes three layers:
//
//   - the Program type itself (e.g. SSSPProgram), for users composing their
//     own pipelines;
//   - a New*Graph constructor that applies the paper's dataset preprocessing
//     (§5.1) and builds the property graph;
//   - a runner (e.g. SSSP) that initializes vertex state, executes the
//     program and extracts results.
//
// The benchmark harness builds graphs once and calls runners repeatedly, so
// graph construction time is excluded from measurements exactly as the paper
// excludes load time.
package algorithms
