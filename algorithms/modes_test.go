package algorithms

import (
	"math"
	"testing"

	"graphmat"
	"graphmat/internal/gen"
)

// Algorithm-level mode differential: for every traversal and ranking driver
// the registry serves, pull, push and auto must produce bit-identical result
// series (compared as float64 bit patterns — "close enough" would hide a
// fold-order divergence) and identical engine work tallies. The per-superstep
// y-vector differential lives in internal/core; this level proves the whole
// driver stack — preprocessing, workspaces, multi-run sessions — is
// mode-oblivious too.

// modeGoldens returns adversarial edge sets: the RMAT stand-in plus the
// shapes that historically break frontier kernels (empty frontier via an
// isolated source, full frontiers, self-loops, isolated vertices).
func modeGoldens() map[string]func() *graphmat.COO[float32] {
	return map[string]func() *graphmat.COO[float32]{
		"rmat": func() *graphmat.COO[float32] {
			return gen.RMAT(gen.RMATOptions{Scale: 10, EdgeFactor: 8, Seed: 42, MaxWeight: 10})
		},
		"self_loops_ring": func() *graphmat.COO[float32] {
			c := graphmat.NewCOO[float32](200)
			for v := uint32(0); v < 200; v++ {
				c.Add(v, v, 1)
				c.Add(v, (v+1)%200, 2)
				c.Add(v, (v*31+7)%200, 3)
			}
			return c
		},
		"isolated_tail": func() *graphmat.COO[float32] {
			// Edges among the first 100 of 640 vertices; vertex 0 is the
			// hub, everything past 100 is isolated.
			c := graphmat.NewCOO[float32](640)
			for v := uint32(1); v < 100; v++ {
				c.Add(0, v, 1)
				c.Add(v, (v*17)%100, 2)
			}
			return c
		},
	}
}

// modeRun executes one registry algorithm under an explicit mode and returns
// the uniform result.
func modeRun(t *testing.T, algo string, build func() *graphmat.COO[float32], p Params) Result {
	t.Helper()
	spec, ok := Lookup(algo)
	if !ok {
		t.Fatalf("algorithm %s not registered", algo)
	}
	inst, err := spec.Build(build(), 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameSeries(t *testing.T, what string, ref, got []float64) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: length %d vs %d", what, len(ref), len(got))
	}
	for v := range ref {
		if math.Float64bits(ref[v]) != math.Float64bits(got[v]) {
			t.Fatalf("%s: value[%d] differs: %v (%x) vs %v (%x)",
				what, v, ref[v], math.Float64bits(ref[v]), got[v], math.Float64bits(got[v]))
		}
	}
}

// TestAlgorithmsModeDifferential sweeps bfs/sssp/pagerank/ppr × goldens ×
// sources (a connected root and — where the graph has one — an isolated
// root, the empty-frontier-after-one-superstep case).
func TestAlgorithmsModeDifferential(t *testing.T) {
	algos := []struct {
		name   string
		params Params
	}{
		{"bfs", Params{Source: 0}},
		{"sssp", Params{Source: 0}},
		{"pagerank", Params{Iterations: 15}},
		{"ppr", Params{Sources: []uint32{0, 3}, Iterations: 15}},
		{"components", Params{}},
		{"triangles", Params{}},
		{"hits", Params{Iterations: 12}},
	}
	for name, build := range modeGoldens() {
		for _, a := range algos {
			t.Run(name+"/"+a.name, func(t *testing.T) {
				pull, push, auto := a.params, a.params, a.params
				pull.Mode = graphmat.Pull
				push.Mode = graphmat.Push
				auto.Mode = graphmat.Auto
				ref := modeRun(t, a.name, build, pull)
				for mode, res := range map[string]Result{
					"push": modeRun(t, a.name, build, push),
					"auto": modeRun(t, a.name, build, auto),
				} {
					sameSeries(t, a.name+" values ("+mode+")", ref.Values, res.Values)
					for series := range ref.Series {
						sameSeries(t, a.name+" series "+series+" ("+mode+")", ref.Series[series], res.Series[series])
					}
					if (ref.Count == nil) != (res.Count == nil) || (ref.Count != nil && *res.Count != *ref.Count) {
						t.Errorf("%s (%s): count %v vs pull %v", a.name, mode, res.Count, ref.Count)
					}
					if res.Stats.Iterations != ref.Stats.Iterations {
						t.Errorf("%s (%s): iterations %d vs pull %d", a.name, mode, res.Stats.Iterations, ref.Stats.Iterations)
					}
					if res.Stats.EdgesProcessed != ref.Stats.EdgesProcessed {
						t.Errorf("%s (%s): edges %d vs pull %d", a.name, mode, res.Stats.EdgesProcessed, ref.Stats.EdgesProcessed)
					}
					if res.Stats.MessagesSent != ref.Stats.MessagesSent {
						t.Errorf("%s (%s): sent %d vs pull %d", a.name, mode, res.Stats.MessagesSent, ref.Stats.MessagesSent)
					}
				}
			})
		}
	}
}

// TestBFSIsolatedRootModes is the empty-frontier traversal: the source sends
// but nothing receives, so the run converges after one superstep in every
// mode with the root at distance 0 and everything else unreached.
func TestBFSIsolatedRootModes(t *testing.T) {
	build := modeGoldens()["isolated_tail"]
	for _, mode := range []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto} {
		res := modeRun(t, "bfs", build, Params{Source: 600, Mode: mode})
		if res.Values[600] != 0 {
			t.Errorf("%s: root distance %v", mode, res.Values[600])
		}
		for v, d := range res.Values {
			if v != 600 && d != float64(Unreached) {
				t.Errorf("%s: vertex %d reached (%v) from isolated root", mode, v, d)
			}
		}
	}
}

// TestModeParamParsing covers the registry's global "mode" parameter.
func TestModeParamParsing(t *testing.T) {
	spec, _ := Lookup("bfs")
	p, err := spec.ParseParams(map[string]any{"source": float64(3), "mode": "push"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != graphmat.Push || p.Source != 3 {
		t.Errorf("parsed %+v", p)
	}
	if _, err := spec.ParseParams(map[string]any{"mode": "sideways"}); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := spec.ParseParams(map[string]any{"mode": 7.0}); err == nil {
		t.Error("numeric mode accepted")
	}
	// Mode must not change the cache key: bit-identical results are shared.
	a, _ := spec.ParseParams(map[string]any{"source": float64(1), "mode": "push"})
	b, _ := spec.ParseParams(map[string]any{"source": float64(1), "mode": "pull"})
	if a.Key() != b.Key() {
		t.Errorf("mode leaked into cache key: %q vs %q", a.Key(), b.Key())
	}
}
