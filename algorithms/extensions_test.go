package algorithms

import (
	"math"
	"testing"

	"graphmat"
	"graphmat/internal/gen"
	"graphmat/internal/sparse"
)

func TestHITSOnKnownGraph(t *testing.T) {
	// Star: hub vertex 0 points at authorities 1..4. Vertex 0 must get all
	// the hub mass, vertices 1..4 equal authority mass.
	coo := sparse.NewCOO[float32](5, 5)
	for v := uint32(1); v < 5; v++ {
		coo.Add(0, v, 1)
	}
	g, err := NewHITSGraph(coo, 2)
	if err != nil {
		t.Fatal(err)
	}
	scores, stats := HITS(g, HITSOptions{Iterations: 10, Config: graphmat.Config{Threads: 2}})
	if stats.Iterations != 20 { // two half-steps per iteration
		t.Errorf("Iterations = %d, want 20", stats.Iterations)
	}
	if scores[0].Hub < 0.99 {
		t.Errorf("hub[0] = %v, want ~1", scores[0].Hub)
	}
	for v := 1; v < 5; v++ {
		if math.Abs(scores[v].Auth-0.5) > 1e-9 { // 4 equal authorities, L2 normalized
			t.Errorf("auth[%d] = %v, want 0.5", v, scores[v].Auth)
		}
		if scores[v].Hub != 0 {
			t.Errorf("hub[%d] = %v, want 0", v, scores[v].Hub)
		}
	}
	if scores[0].Auth != 0 {
		t.Errorf("auth[0] = %v, want 0", scores[0].Auth)
	}
}

func TestHITSNormalized(t *testing.T) {
	coo := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 3})
	coo.RemoveSelfLoops()
	g, err := NewHITSGraph(coo, 4)
	if err != nil {
		t.Fatal(err)
	}
	scores, _ := HITS(g, HITSOptions{Iterations: 15, Config: graphmat.Config{Threads: 2}})
	var hub2, auth2 float64
	for _, s := range scores {
		hub2 += s.Hub * s.Hub
		auth2 += s.Auth * s.Auth
		if s.Hub < 0 || s.Auth < 0 {
			t.Fatal("negative score")
		}
	}
	if math.Abs(hub2-1) > 1e-9 || math.Abs(auth2-1) > 1e-9 {
		t.Errorf("norms: hub²=%v auth²=%v, want 1", hub2, auth2)
	}
}

func TestHITSPowerIterationConverges(t *testing.T) {
	// On a fixed graph, doubling iterations must barely change the scores
	// (power iteration converges geometrically).
	coo := gen.RMAT(gen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 4})
	coo.RemoveSelfLoops()
	build := func() *graphmat.Graph[HITSVertex, float32] {
		g, err := NewHITSGraph(coo.Clone(), 4)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, _ := HITS(build(), HITSOptions{Iterations: 30})
	b, _ := HITS(build(), HITSOptions{Iterations: 60})
	var maxDiff float64
	for v := range a {
		maxDiff = math.Max(maxDiff, math.Abs(a[v].Auth-b[v].Auth))
		maxDiff = math.Max(maxDiff, math.Abs(a[v].Hub-b[v].Hub))
	}
	if maxDiff > 1e-6 {
		t.Errorf("not converged after 30 iterations: max diff %v", maxDiff)
	}
}

func TestPersonalizedPageRankLocality(t *testing.T) {
	// Ring + random chords, sources in one corner: rank must concentrate
	// near the sources and vanish on vertices unreachable from them.
	n := uint32(256)
	coo := sparse.NewCOO[float32](n, n)
	rng := gen.NewRNG(5)
	for v := uint32(0); v+1 < n/2; v++ { // a path component 0..127
		coo.Add(v, v+1, 1)
		coo.Add(v+1, v, 1)
	}
	for v := n / 2; v+1 < n; v++ { // a second, disconnected path 128..255
		coo.Add(v, v+1, 1)
		coo.Add(v+1, v, 1)
	}
	for i := 0; i < 64; i++ { // chords within the first component
		a, b := rng.Uint32n(n/2), rng.Uint32n(n/2)
		if a != b {
			coo.Add(a, b, 1)
		}
	}
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	g, err := NewPersonalizedPageRankGraph(coo, 4)
	if err != nil {
		t.Fatal(err)
	}
	sources := []uint32{0, 1}
	ranks, _ := PersonalizedPageRank(g, sources, PageRankOptions{MaxIterations: 100, Tolerance: 1e-12})

	// Unreachable component must have zero rank.
	for v := n / 2; v < n; v++ {
		if ranks[v] != 0 {
			t.Fatalf("rank[%d] = %v on unreachable component", v, ranks[v])
		}
	}
	// Sources outrank a far-away vertex in the same component.
	if ranks[0] <= ranks[n/2-1] || ranks[1] <= ranks[n/2-1] {
		t.Errorf("no locality: rank[0]=%v rank[1]=%v rank[far]=%v", ranks[0], ranks[1], ranks[n/2-1])
	}
	// Total rank is a (sub-)probability mass.
	var sum float64
	for _, r := range ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if sum <= 0 || sum > 1.5 {
		t.Errorf("rank mass = %v", sum)
	}
}

func TestPersonalizedPageRankReducesToUniformTeleport(t *testing.T) {
	// With ALL vertices as sources, PPR is ordinary PageRank up to the
	// restart mass scaling (restart r/n per vertex instead of r).
	coo := gen.RMAT(gen.RMATOptions{Scale: 7, EdgeFactor: 8, Seed: 6})
	coo.RemoveSelfLoops()
	coo.SortRowMajor()
	coo.DedupKeepFirst()
	n := coo.NRows

	gPPR, err := NewPersonalizedPageRankGraph(coo.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]uint32, n)
	for i := range all {
		all[i] = uint32(i)
	}
	ppr, _ := PersonalizedPageRank(gPPR, all, PageRankOptions{MaxIterations: 60})

	gPR, err := NewPageRankGraph(coo.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := PageRank(gPR, PageRankOptions{MaxIterations: 60})

	// PPR with uniform sources = PR / n (ranks are distributions vs counts).
	for v := uint32(0); v < n; v++ {
		want := pr[v] / float64(n)
		if math.Abs(ppr[v]-want) > 1e-9 {
			t.Fatalf("ppr[%d] = %v, want %v", v, ppr[v], want)
		}
	}
}
