package algorithms

import (
	"context"
	"math"

	"graphmat"
)

// Unreached marks a vertex BFS/SSSP never visited.
const Unreached = math.MaxUint32

// BFSProgram implements the paper's equation (2): Distance(v) =
// min(Distance(v), t+1), becoming active on change. Message: the sender's
// distance. Process: message+1. Reduce: min. Apply: min with activation.
type BFSProgram struct{}

// SendMessage emits the vertex's current distance.
func (BFSProgram) SendMessage(_ graphmat.VertexID, prop uint32) (uint32, bool) { return prop, true }

// ProcessMessage advances the frontier one hop.
func (BFSProgram) ProcessMessage(m uint32, _ float32, _ uint32) uint32 { return m + 1 }

// Reduce keeps the smaller distance.
func (BFSProgram) Reduce(a, b uint32) uint32 { return min(a, b) }

// Apply adopts an improved distance and reactivates the vertex.
func (BFSProgram) Apply(r uint32, _ graphmat.VertexID, prop *uint32) bool {
	if r < *prop {
		*prop = r
		return true
	}
	return false
}

// Mul is ProcessMessage as a destination-free semiring multiply: the hop
// count never reads the destination, so one edge traversal can serve every
// source column of a multi-source block run.
func (BFSProgram) Mul(m uint32, _ float32) uint32 { return m + 1 }

// Add is Reduce under its semiring name.
func (BFSProgram) Add(a, b uint32) uint32 { return min(a, b) }

// Identity is the fold's neutral element: an unreached distance.
func (BFSProgram) Identity() uint32 { return Unreached }

// Direction scatters along out-edges (BFS inputs are symmetrized, §5.1).
func (BFSProgram) Direction() graphmat.Direction { return graphmat.Out }

// ProcessIgnoresDst declares that ProcessMessage never reads the
// destination property, enabling the backend's fast path.
func (BFSProgram) ProcessIgnoresDst() {}

// NewBFSGraph builds the BFS property graph, applying the paper's
// preprocessing: self-loops removed and the edge set symmetrized ("we
// replicate edges ... to obtain a symmetric graph"). The input is consumed.
func NewBFSGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[uint32, float32], error) {
	adj.RemoveSelfLoops()
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	adj.Symmetrize()
	return graphmat.New[uint32](adj, graphmat.Options{Partitions: partitions})
}

// NewBFSStore is NewBFSGraph as a versioned store: the same preprocessing
// and epoch-0 graph, plus live edge updates via ApplyEdges.
func NewBFSStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[uint32, float32], error) {
	adj.RemoveSelfLoops()
	adj.SortRowMajor()
	adj.DedupKeepFirst()
	adj.Symmetrize()
	return graphmat.NewStore[uint32](adj, graphmat.Options{Partitions: partitions})
}

// BFS computes hop distances from root on a graph built by NewBFSGraph.
// Unreachable vertices report Unreached.
//
// Deprecated: use RunBFS with WithConfig.
func BFS(g *graphmat.Graph[uint32, float32], root uint32, cfg graphmat.Config) ([]uint32, graphmat.Stats) {
	ws := graphmat.NewWorkspace[uint32, uint32](int(g.NumVertices()), cfg.Vector)
	dist, stats, err := BFSWithWorkspace(g, root, cfg, ws)
	if err != nil {
		panic(err) // workspace built for this graph and config above
	}
	return dist, stats
}

// BFSWithWorkspace is BFS with caller-managed engine scratch for repeated
// traversals on one graph.
//
// Deprecated: use RunBFS with WithWorkspace.
func BFSWithWorkspace(g *graphmat.Graph[uint32, float32], root uint32, cfg graphmat.Config, ws *graphmat.Workspace[uint32, uint32]) ([]uint32, graphmat.Stats, error) {
	return BFSContext(context.Background(), g, root, cfg, ws, nil)
}

// BFSContext is BFS as a cancelable, observable session: ctx stops the
// traversal cooperatively, obs (when non-nil) receives one report per
// superstep. A stopped run returns the partial distances reached so far
// together with the stop cause; Stats.Reason classifies the ending.
//
// Deprecated: use RunBFS with WithObserver; this remains the implementation
// behind it.
func BFSContext(ctx context.Context, g *graphmat.Graph[uint32, float32], root uint32, cfg graphmat.Config, ws *graphmat.Workspace[uint32, uint32], obs Observer) ([]uint32, graphmat.Stats, error) {
	g.SetAllProps(Unreached)
	g.SetProp(root, 0)
	g.ClearActive()
	g.SetActive(root)
	stats, err := graphmat.RunContext(ctx, g, BFSProgram{}, cfg, ws, newSession(obs).options()...)
	dist := make([]uint32, g.NumVertices())
	for v := range dist {
		dist[v] = g.Prop(uint32(v))
	}
	return dist, stats, err
}
