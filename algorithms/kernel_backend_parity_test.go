package algorithms

import (
	"testing"

	"graphmat"
	"graphmat/internal/kernels"
)

// Algorithm-level backend differential: every registered algorithm, under
// every kernel mode, must produce bit-identical results and work tallies on
// every SIMD backend the CPU supports as it does under the scalar oracle.
// The SumFoldF64 programs (pagerank, ppr, hits) route through the SIMD
// scatter/fold fast paths; the rest prove the frontier word ops and scans the
// generic kernels sit on are backend-oblivious too. Skipped on CPUs with no
// SIMD backend (the matrix collapses to scalar vs scalar).
func TestAlgorithmsKernelBackendParity(t *testing.T) {
	simd := kernels.Supported()[1:]
	if len(simd) == 0 {
		t.Skip("no SIMD backend supported on this CPU")
	}
	algos := []struct {
		name   string
		params Params
	}{
		{"bfs", Params{Source: 0}},
		{"sssp", Params{Source: 0}},
		{"pagerank", Params{Iterations: 12}},
		{"ppr", Params{Sources: []uint32{0, 3}, Iterations: 12}},
		{"components", Params{}},
		{"triangles", Params{}},
		{"hits", Params{Iterations: 8}},
		{"reachability", Params{Source: 0}},
		{"widest", Params{Source: 0}},
	}
	for name, build := range modeGoldens() {
		for _, a := range algos {
			t.Run(name+"/"+a.name, func(t *testing.T) {
				for _, mode := range []graphmat.Mode{graphmat.Pull, graphmat.Push, graphmat.Auto} {
					p := a.params
					p.Mode = mode
					restore, ok := kernels.ForceBackend(kernels.Scalar)
					if !ok {
						t.Fatal("scalar backend refused")
					}
					ref := modeRun(t, a.name, build, p)
					restore()
					for _, b := range simd {
						restore, ok := kernels.ForceBackend(b)
						if !ok {
							t.Fatalf("backend %s reported supported but ForceBackend refused it", b)
						}
						res := modeRun(t, a.name, build, p)
						restore()
						tag := a.name + " " + mode.String() + " " + b.String()
						sameSeries(t, tag+" values", ref.Values, res.Values)
						for series := range ref.Series {
							sameSeries(t, tag+" series "+series, ref.Series[series], res.Series[series])
						}
						if (ref.Count == nil) != (res.Count == nil) || (ref.Count != nil && *res.Count != *ref.Count) {
							t.Errorf("%s: count %v, scalar %v", tag, res.Count, ref.Count)
						}
						if res.Stats.Iterations != ref.Stats.Iterations ||
							res.Stats.EdgesProcessed != ref.Stats.EdgesProcessed ||
							res.Stats.MessagesSent != ref.Stats.MessagesSent ||
							res.Stats.Applies != ref.Stats.Applies {
							t.Errorf("%s: stats %+v, scalar %+v", tag, res.Stats, ref.Stats)
						}
					}
				}
			})
		}
	}
}
