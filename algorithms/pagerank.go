package algorithms

import (
	"context"
	"math"

	"graphmat"
)

// PRVertex is the PageRank vertex state: the current rank and the
// precomputed reciprocal out-degree (SendMessage has no graph access, so the
// degree must live in the vertex property — the C++ implementation does the
// same).
type PRVertex struct {
	Rank   float64
	InvDeg float64
}

// PageRankProgram implements the paper's equation (1):
//
//	PRₜ₊₁(v) = r + (1−r) · Σ_{(u,v)∈E} PRₜ(u)/degree(u)
//
// Message: PR(u)/degree(u). Process: identity. Reduce: sum. Apply: the
// equation, activating the vertex when the rank moved more than Tolerance.
type PageRankProgram struct {
	// RestartProb is r, the random-surf probability.
	RestartProb float64
	// Tolerance bounds the rank change below which a vertex deactivates;
	// 0 keeps every receiving vertex active (run a fixed iteration count).
	Tolerance float64
}

// SendMessage emits rank/degree; sinks (out-degree 0) send nothing.
func (p PageRankProgram) SendMessage(_ graphmat.VertexID, prop PRVertex) (float64, bool) {
	if prop.InvDeg == 0 {
		return 0, false
	}
	return prop.Rank * prop.InvDeg, true
}

// ProcessMessage passes the contribution through unchanged.
func (p PageRankProgram) ProcessMessage(m float64, _ float32, _ PRVertex) float64 { return m }

// Reduce sums contributions.
func (p PageRankProgram) Reduce(a, b float64) float64 { return a + b }

// Apply computes the new rank and reports whether it moved beyond Tolerance.
func (p PageRankProgram) Apply(sum float64, _ graphmat.VertexID, prop *PRVertex) bool {
	next := p.RestartProb + (1-p.RestartProb)*sum
	changed := math.Abs(next-prop.Rank) > p.Tolerance
	prop.Rank = next
	return changed
}

// Direction scatters rank along out-edges.
func (p PageRankProgram) Direction() graphmat.Direction { return graphmat.Out }

// ProcessIgnoresDst declares that ProcessMessage never reads the
// destination property, enabling the backend's fast path.
func (PageRankProgram) ProcessIgnoresDst() {}

// ReducesBySumF64 declares the (+, passthrough) float64 fold, routing the
// column folds through the SIMD kernel backends.
func (PageRankProgram) ReducesBySumF64() {}

// PageRankOptions configures a PageRank run.
type PageRankOptions struct {
	RestartProb   float64 // 0 means 0.15
	Tolerance     float64 // 0 with MaxIterations>0 runs exactly MaxIterations
	MaxIterations int     // 0 means 100
	Config        graphmat.Config
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.RestartProb == 0 {
		o.RestartProb = 0.15
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	return o
}

// NewPageRankGraph builds the PageRank property graph from adjacency triples
// (paper preprocessing: self-loops removed, edges kept directed). The input
// is consumed.
func NewPageRankGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[PRVertex, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.New[PRVertex](adj, graphmat.Options{Partitions: partitions})
}

// NewPageRankStore is NewPageRankGraph as a versioned store: the same
// preprocessing and epoch-0 graph, plus live edge updates via ApplyEdges.
func NewPageRankStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[PRVertex, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.NewStore[PRVertex](adj, graphmat.Options{Partitions: partitions})
}

// PageRank runs PageRank on a graph built by NewPageRankGraph, returning the
// final rank per vertex. Vertex state is (re)initialized, so the same graph
// can be reused across runs.
//
// Equation (1) sums contributions from *every* vertex each iteration, so the
// runner re-activates all vertices before each superstep (the paper's
// PageRank likewise has every vertex participating each iteration — that is
// why Figure 4a can report a stable time per iteration). Convergence is
// detected when no vertex's rank moves beyond Tolerance.
//
// Deprecated: use RunPageRank with WithIterations/WithTolerance/
// WithRestartProb.
func PageRank(g *graphmat.Graph[PRVertex, float32], opt PageRankOptions) ([]float64, graphmat.Stats) {
	// One workspace across the whole superstep loop (graph_program_init in
	// the paper's appendix): avoids two vertex-sized allocations per step.
	ws := graphmat.NewWorkspace[float64, float64](int(g.NumVertices()), opt.Config.Vector)
	ranks, stats, err := PageRankWithWorkspace(g, opt, ws)
	if err != nil {
		panic(err) // workspace built for this graph and config above
	}
	return ranks, stats
}

// PageRankWithWorkspace is PageRank with caller-managed engine scratch, for
// drivers (like the analytics server) that run back-to-back queries on one
// graph and want to reuse the workspace instead of reallocating it.
//
// Deprecated: use RunPageRank with WithWorkspace.
func PageRankWithWorkspace(g *graphmat.Graph[PRVertex, float32], opt PageRankOptions, ws *graphmat.Workspace[float64, float64]) ([]float64, graphmat.Stats, error) {
	return PageRankContext(context.Background(), g, opt, ws, nil)
}

// PageRankContext is PageRank as a cancelable, observable session: ctx
// cancellation or deadline stops the run between (or within) supersteps, and
// obs, when non-nil, receives one report per superstep. On a stopped run the
// returned ranks are the partial state at the stop and the error is the stop
// cause; Stats.Reason classifies how the run ended either way.
//
// Deprecated: use RunPageRank with WithObserver; this remains the
// implementation behind it.
func PageRankContext(ctx context.Context, g *graphmat.Graph[PRVertex, float32], opt PageRankOptions, ws *graphmat.Workspace[float64, float64], obs Observer) ([]float64, graphmat.Stats, error) {
	opt = opt.withDefaults()
	g.InitProps(func(v uint32) PRVertex {
		p := PRVertex{Rank: 1}
		if d := g.OutDegree(v); d > 0 {
			p.InvDeg = 1 / float64(d)
		}
		return p
	})
	prog := PageRankProgram{RestartProb: opt.RestartProb, Tolerance: opt.Tolerance}
	cfg := opt.Config
	cfg.MaxIterations = 1
	sess := newSession(obs)
	var stats graphmat.Stats
	stats.Reason = graphmat.MaxIterations
	for it := 0; it < opt.MaxIterations; it++ {
		g.SetAllActive()
		s, err := graphmat.RunContext(ctx, g, prog, cfg, ws, sess.options()...)
		accumulate(&stats, s)
		if err != nil {
			stats.Reason = s.Reason
			return ranksOf(g), stats, err
		}
		// After the superstep the active set holds exactly the vertices
		// whose rank moved beyond Tolerance.
		if !g.Active().Any() {
			stats.Reason = graphmat.Converged
			break
		}
	}
	return ranksOf(g), stats, nil
}

func ranksOf(g *graphmat.Graph[PRVertex, float32]) []float64 {
	ranks := make([]float64, g.NumVertices())
	for v := range ranks {
		ranks[v] = g.Prop(uint32(v)).Rank
	}
	return ranks
}
