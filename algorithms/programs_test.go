package algorithms

import (
	"math"
	"testing"
	"testing/quick"

	"graphmat"
)

// The engine requires Reduce to be commutative and associative (partitions
// fold results in structure order). These property tests pin that contract
// for every shipped program.

func TestQuickPageRankReduceCommutesAssociates(t *testing.T) {
	p := PageRankProgram{}
	comm := func(a, b float64) bool { return p.Reduce(a, b) == p.Reduce(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	assoc := func(aRaw, bRaw, cRaw uint32) bool {
		// Rank contributions are probabilities scaled by degree: bound the
		// domain to realistic magnitudes (float addition overflows at the
		// extremes of the full float64 range regardless of order).
		a := float64(aRaw) / float64(math.MaxUint32)
		b := float64(bRaw) / float64(math.MaxUint32)
		c := float64(cRaw) / float64(math.MaxUint32)
		l := p.Reduce(p.Reduce(a, b), c)
		r := p.Reduce(a, p.Reduce(b, c))
		// Float addition is not exactly associative; the engine's contract
		// is order-insensitivity up to rounding.
		return math.Abs(l-r) <= 1e-12
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
}

func TestQuickBFSReduceLattice(t *testing.T) {
	p := BFSProgram{}
	f := func(a, b, c uint32) bool {
		return p.Reduce(a, b) == p.Reduce(b, a) &&
			p.Reduce(p.Reduce(a, b), c) == p.Reduce(a, p.Reduce(b, c)) &&
			p.Reduce(a, a) == a // idempotent (min is a lattice meet)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSSSPReduceLattice(t *testing.T) {
	p := SSSPProgram{}
	f := func(a, b, c float32) bool {
		if a != a || b != b || c != c { // NaN inputs excluded
			return true
		}
		return p.Reduce(a, b) == p.Reduce(b, a) &&
			p.Reduce(p.Reduce(a, b), c) == p.Reduce(a, p.Reduce(b, c)) &&
			p.Reduce(a, a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCCReduceLattice(t *testing.T) {
	p := CCProgram{}
	f := func(a, b, c uint32) bool {
		return p.Reduce(a, b) == p.Reduce(b, a) &&
			p.Reduce(p.Reduce(a, b), c) == p.Reduce(a, p.Reduce(b, c)) &&
			p.Reduce(a, a) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTCPhase2ReduceCommutes(t *testing.T) {
	p := tcPhase2{}
	f := func(a, b, c int64) bool {
		return p.Reduce(a, b) == p.Reduce(b, a) &&
			p.Reduce(p.Reduce(a, b), c) == p.Reduce(a, p.Reduce(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCFReduceCommutes(t *testing.T) {
	p := CFProgram{}
	f := func(raw1, raw2 [LatentDim]float32) bool {
		ab := p.Reduce(raw1, raw2)
		ba := p.Reduce(raw2, raw1)
		for k := 0; k < LatentDim; k++ {
			if ab[k] != ba[k] && !(math.IsNaN(float64(ab[k])) && math.IsNaN(float64(ba[k]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSSSPApplySemantics(t *testing.T) {
	p := SSSPProgram{}
	prop := float32(10)
	if !p.Apply(5, 0, &prop) || prop != 5 {
		t.Error("improvement not adopted or not activated")
	}
	if p.Apply(7, 0, &prop) || prop != 5 {
		t.Error("regression adopted or activated")
	}
	if p.Apply(5, 0, &prop) {
		t.Error("equal distance re-activated")
	}
}

func TestBFSApplySemantics(t *testing.T) {
	p := BFSProgram{}
	prop := uint32(Unreached)
	if !p.Apply(3, 0, &prop) || prop != 3 {
		t.Error("first visit not adopted")
	}
	if p.Apply(3, 0, &prop) {
		t.Error("revisit activated")
	}
}

func TestPageRankSinksSendNothing(t *testing.T) {
	p := PageRankProgram{RestartProb: 0.15}
	if _, send := p.SendMessage(0, PRVertex{Rank: 1, InvDeg: 0}); send {
		t.Error("sink vertex sent a message")
	}
	if m, send := p.SendMessage(0, PRVertex{Rank: 2, InvDeg: 0.5}); !send || m != 1 {
		t.Errorf("message = %v send = %v", m, send)
	}
}

func TestIntersectCount(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want int64
	}{
		{nil, nil, 0},
		{[]uint32{1, 2, 3}, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, 2},
		{[]uint32{1, 5, 9}, []uint32{2, 6, 10}, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 3},
		{[]uint32{7}, []uint32{7}, 1},
	}
	for _, c := range cases {
		if got := intersectCount(c.a, c.b); got != c.want {
			t.Errorf("intersectCount(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Programs that declare ProcessIgnoresDst must actually ignore the
// destination argument: calling with zero vs arbitrary dst must agree.
func TestDstIndependentContracts(t *testing.T) {
	var _ graphmat.DstIndependent = PageRankProgram{}
	var _ graphmat.DstIndependent = BFSProgram{}
	var _ graphmat.DstIndependent = SSSPProgram{}
	var _ graphmat.DstIndependent = CCProgram{}
	var _ graphmat.DstIndependent = DegreeProgram{}

	if (PageRankProgram{}).ProcessMessage(2, 1, PRVertex{}) != (PageRankProgram{}).ProcessMessage(2, 1, PRVertex{Rank: 99, InvDeg: 1}) {
		t.Error("PageRank ProcessMessage reads dst")
	}
	if (BFSProgram{}).ProcessMessage(3, 1, 0) != (BFSProgram{}).ProcessMessage(3, 1, 77) {
		t.Error("BFS ProcessMessage reads dst")
	}
	if (SSSPProgram{}).ProcessMessage(3, 2, 0) != (SSSPProgram{}).ProcessMessage(3, 2, 77) {
		t.Error("SSSP ProcessMessage reads dst")
	}
}
