package algorithms_test

import (
	"math"
	"testing"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
	"graphmat/internal/sparse"
)

func testCOO() *sparse.COO[float32] {
	return gen.RMAT(gen.RMATOptions{Scale: 6, EdgeFactor: 8, Seed: 42, MaxWeight: 10})
}

func buildInstance(t *testing.T, name string) (algorithms.Spec, algorithms.Instance) {
	t.Helper()
	spec, ok := algorithms.Lookup(name)
	if !ok {
		t.Fatalf("algorithm %q not registered", name)
	}
	inst, err := spec.Build(testCOO(), 0)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return spec, inst
}

func TestRegistryNames(t *testing.T) {
	want := []string{"bfs", "components", "hits", "pagerank", "ppr", "reachability", "sssp", "triangles", "widest"}
	got := algorithms.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

// TestRegistryMatchesDirectCalls runs every registry algorithm and checks the
// uniform Result against the direct package function on the same input.
func TestRegistryMatchesDirectCalls(t *testing.T) {
	t.Run("pagerank", func(t *testing.T) {
		_, inst := buildInstance(t, "pagerank")
		res, err := inst.Run(algorithms.Params{Iterations: 15}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := algorithms.NewPageRankGraph(testCOO(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := algorithms.PageRank(g, algorithms.PageRankOptions{MaxIterations: 15})
		compareFloat64(t, res.Values, want)
	})
	t.Run("bfs", func(t *testing.T) {
		_, inst := buildInstance(t, "bfs")
		res, err := inst.Run(algorithms.Params{Source: 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := algorithms.NewBFSGraph(testCOO(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := algorithms.BFS(g, 3, graphmat.Config{})
		for v := range want {
			if res.Values[v] != float64(want[v]) {
				t.Fatalf("vertex %d: got %v, want %d", v, res.Values[v], want[v])
			}
		}
	})
	t.Run("sssp", func(t *testing.T) {
		_, inst := buildInstance(t, "sssp")
		res, err := inst.Run(algorithms.Params{Source: 5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := algorithms.NewSSSPGraph(testCOO(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := algorithms.SSSP(g, 5, graphmat.Config{})
		for v := range want {
			if res.Values[v] != float64(want[v]) {
				t.Fatalf("vertex %d: got %v, want %v", v, res.Values[v], want[v])
			}
		}
	})
	t.Run("components", func(t *testing.T) {
		_, inst := buildInstance(t, "components")
		res, err := inst.Run(algorithms.Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := algorithms.NewCCGraph(testCOO(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := algorithms.ConnectedComponents(g, graphmat.Config{})
		for v := range want {
			if res.Values[v] != float64(want[v]) {
				t.Fatalf("vertex %d: got %v, want %d", v, res.Values[v], want[v])
			}
		}
	})
	t.Run("ppr", func(t *testing.T) {
		_, inst := buildInstance(t, "ppr")
		res, err := inst.Run(algorithms.Params{Sources: []uint32{1, 2}, Iterations: 10}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := algorithms.NewPersonalizedPageRankGraph(testCOO(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := algorithms.PersonalizedPageRank(g, []uint32{1, 2}, algorithms.PageRankOptions{MaxIterations: 10})
		compareFloat64(t, res.Values, want)
	})
	t.Run("triangles", func(t *testing.T) {
		_, inst := buildInstance(t, "triangles")
		res, err := inst.Run(algorithms.Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := algorithms.NewTriangleGraph(testCOO(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := algorithms.TriangleCount(g, graphmat.Config{})
		if res.Count == nil || *res.Count != want {
			t.Fatalf("count = %v, want %d", res.Count, want)
		}
	})
	t.Run("hits", func(t *testing.T) {
		_, inst := buildInstance(t, "hits")
		res, err := inst.Run(algorithms.Params{Iterations: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := algorithms.NewHITSGraph(testCOO(), 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := algorithms.HITS(g, algorithms.HITSOptions{Iterations: 8})
		for v := range want {
			if res.Series["hub"][v] != want[v].Hub || res.Series["auth"][v] != want[v].Auth {
				t.Fatalf("vertex %d: got hub=%v auth=%v, want %+v", v, res.Series["hub"][v], res.Series["auth"][v], want[v])
			}
		}
	})
}

// TestScratchReuse checks that reusing one pooled scratch across runs gives
// bit-identical results to fresh allocation — the property the server's
// workspace pool depends on.
func TestScratchReuse(t *testing.T) {
	for _, name := range algorithms.Names() {
		t.Run(name, func(t *testing.T) {
			_, inst := buildInstance(t, name)
			p := algorithms.Params{Source: 2, Iterations: 10}
			fresh, err := inst.Run(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			scratch := inst.NewScratch()
			for round := 0; round < 3; round++ {
				res, err := inst.Run(p, scratch)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				compareResults(t, res, fresh)
			}
		})
	}
}

func TestScratchTypeMismatch(t *testing.T) {
	_, bfs := buildInstance(t, "bfs")
	_, pr := buildInstance(t, "pagerank")
	if _, err := bfs.Run(algorithms.Params{}, pr.NewScratch()); err == nil {
		t.Fatal("expected error passing pagerank scratch to bfs")
	}
}

func TestSourceOutOfRange(t *testing.T) {
	for _, name := range []string{"bfs", "sssp"} {
		_, inst := buildInstance(t, name)
		if _, err := inst.Run(algorithms.Params{Source: inst.NumVertices()}, nil); err == nil {
			t.Fatalf("%s: expected out-of-range error", name)
		}
	}
	_, ppr := buildInstance(t, "ppr")
	if _, err := ppr.Run(algorithms.Params{Sources: []uint32{math.MaxUint32}}, nil); err == nil {
		t.Fatal("ppr: expected out-of-range error")
	}
}

func TestParseParams(t *testing.T) {
	pr, _ := algorithms.Lookup("pagerank")
	bfs, _ := algorithms.Lookup("bfs")
	ppr, _ := algorithms.Lookup("ppr")

	p, err := pr.ParseParams(map[string]any{"iters": float64(20), "tolerance": 1e-9, "restart": 0.2, "threads": float64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Iterations != 20 || p.Tolerance != 1e-9 || p.RestartProb != 0.2 || p.Threads != 2 {
		t.Fatalf("parsed %+v", p)
	}

	if _, err := pr.ParseParams(map[string]any{"source": float64(1)}); err == nil {
		t.Fatal("pagerank should reject source")
	}
	if _, err := bfs.ParseParams(map[string]any{"source": 1.5}); err == nil {
		t.Fatal("fractional source should be rejected")
	}
	if _, err := bfs.ParseParams(map[string]any{"source": float64(-1)}); err == nil {
		t.Fatal("negative source should be rejected")
	}
	if _, err := bfs.ParseParams(map[string]any{"source": float64(1 << 32)}); err == nil {
		t.Fatal("source beyond uint32 must be rejected, not truncated")
	}
	if _, err := pr.ParseParams(map[string]any{"iters": 1e19}); err == nil {
		t.Fatal("iters beyond uint32 must be rejected, not wrapped")
	}
	if _, err := bfs.ParseParams(map[string]any{"source": "zero"}); err == nil {
		t.Fatal("non-numeric source should be rejected")
	}
	if _, err := ppr.ParseParams(map[string]any{"sources": "1,2"}); err == nil {
		t.Fatal("non-list sources should be rejected")
	}
	p, err = ppr.ParseParams(map[string]any{"sources": []any{float64(1), float64(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sources) != 2 || p.Sources[0] != 1 || p.Sources[1] != 2 {
		t.Fatalf("parsed sources %v", p.Sources)
	}
}

func TestParamsKeyCanonical(t *testing.T) {
	a := algorithms.Params{Source: 1, Iterations: 10, Threads: 1}
	b := algorithms.Params{Source: 1, Iterations: 10, Threads: 8}
	if a.Key() != b.Key() {
		t.Fatalf("thread count must not affect the cache key: %q vs %q", a.Key(), b.Key())
	}
	c := algorithms.Params{Source: 2, Iterations: 10}
	if a.Key() == c.Key() {
		t.Fatalf("different sources must produce different keys: %q", a.Key())
	}
}

func compareFloat64(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: got %v, want %v", v, got[v], want[v])
		}
	}
}

func compareResults(t *testing.T, got, want algorithms.Result) {
	t.Helper()
	compareFloat64(t, got.Values, want.Values)
	for name, series := range want.Series {
		compareFloat64(t, got.Series[name], series)
	}
	if (got.Count == nil) != (want.Count == nil) {
		t.Fatalf("count presence mismatch")
	}
	if got.Count != nil && *got.Count != *want.Count {
		t.Fatalf("count = %d, want %d", *got.Count, *want.Count)
	}
}
