package algorithms

import (
	"fmt"

	"graphmat"
)

// Live-update plumbing for the registry: every ready-made algorithm builds
// its property graph with its own preprocessing of the raw edges (§5.1 —
// self-loop removal, symmetrization, upper-triangle restriction), so a raw
// edge update cannot be applied verbatim: it must be translated into the
// property-graph mutations that preprocessing implies. The translation of a
// delete on a symmetrized graph needs to know whether the REVERSE raw edge
// still exists — that context comes from the EdgeLookup oracle over the
// post-batch raw edge set, which the serving layer maintains as its master
// copy.

// EdgeUpdate is one raw edge mutation (weighted, Del for deletes).
type EdgeUpdate = graphmat.EdgeUpdate

// EdgeLookup reports whether the raw directed edge src→dst exists AFTER the
// batch being applied, and its weight. Implementations are typically a
// binary search over the caller's updated master adjacency
// (graphmat.LookupEdge-style).
type EdgeLookup = func(src, dst uint32) (float32, bool)

// UpdateResult reports what one translated batch did to a property graph.
type UpdateResult = graphmat.ApplyResult

// updateKind classifies an algorithm's preprocessing for update translation.
type updateKind int

const (
	// updDirected: self-loops dropped, directed edges kept as-is
	// (pagerank, ppr, hits, sssp).
	updDirected updateKind = iota
	// updSymmetric: self-loops dropped, edge set symmetrized with original
	// edges taking value precedence over replicated reversals
	// (bfs, components).
	updSymmetric
	// updUpperTriangle: symmetrized then restricted to src < dst
	// (triangles).
	updUpperTriangle
)

// translateUpdates maps raw edge updates into the property-graph updates an
// algorithm's preprocessing implies. The lookup must reflect the POST-batch
// raw state; translating every update of a batch against that final state is
// idempotent per key, so repeated keys collapse correctly under the store's
// last-write-wins batch semantics.
func translateUpdates(kind updateKind, batch []EdgeUpdate, lookup EdgeLookup) ([]EdgeUpdate, error) {
	if kind != updDirected && lookup == nil {
		return nil, fmt.Errorf("algorithms: updating a symmetrized property graph requires an edge lookup over the raw edge set")
	}
	out := make([]EdgeUpdate, 0, 2*len(batch))
	for _, u := range batch {
		if u.Src == u.Dst {
			continue // every registry algorithm removes self-loops
		}
		switch kind {
		case updDirected:
			out = append(out, u)
		case updSymmetric:
			wUV, okUV := lookup(u.Src, u.Dst)
			wVU, okVU := lookup(u.Dst, u.Src)
			out = append(out,
				symState(u.Src, u.Dst, wUV, okUV, wVU, okVU),
				symState(u.Dst, u.Src, wVU, okVU, wUV, okUV))
		case updUpperTriangle:
			a, b := min(u.Src, u.Dst), max(u.Src, u.Dst)
			wAB, okAB := lookup(a, b)
			wBA, okBA := lookup(b, a)
			out = append(out, symState(a, b, wAB, okAB, wBA, okBA))
		}
	}
	return out, nil
}

// symState computes the post-batch property edge src→dst of a symmetrized
// graph: present with the forward raw weight if that edge exists, with the
// reverse raw weight if only the reversal does (Symmetrize's keep-first
// precedence — the original edge beats the replicated reversal), deleted
// otherwise.
func symState(src, dst uint32, wOwn float32, okOwn bool, wRev float32, okRev bool) EdgeUpdate {
	switch {
	case okOwn:
		return EdgeUpdate{Src: src, Dst: dst, Val: wOwn}
	case okRev:
		return EdgeUpdate{Src: src, Dst: dst, Val: wRev}
	default:
		return EdgeUpdate{Src: src, Dst: dst, Del: true}
	}
}

// liveGraph is the store-backed half every registry instance embeds: it owns
// the versioned property graph and implements the Instance interface's
// update and epoch surface. V is the algorithm's vertex property type.
type liveGraph[V any] struct {
	store *graphmat.Store[V, float32]
	kind  updateKind
}

// ApplyUpdates translates a raw edge batch through the algorithm's
// preprocessing and applies it to the property graph, publishing a new
// snapshot epoch. Runs in flight keep their pinned epoch.
func (l *liveGraph[V]) ApplyUpdates(batch []EdgeUpdate, lookup EdgeLookup) (UpdateResult, error) {
	prop, err := translateUpdates(l.kind, batch, lookup)
	if err != nil {
		return UpdateResult{}, err
	}
	return l.store.ApplyEdges(prop)
}

// Epoch reports the property graph's current snapshot epoch (batches applied
// to this instance).
func (l *liveGraph[V]) Epoch() uint64 { return l.store.Epoch() }

// StoreStats exposes the underlying store's counters (overlay size,
// compactions, pinned snapshots).
func (l *liveGraph[V]) StoreStats() graphmat.StoreStats { return l.store.Stats() }

// NumVertices reports the property graph's vertex count (fixed across
// epochs).
func (l *liveGraph[V]) NumVertices() uint32 { return l.store.NumVertices() }

// NumEdges reports the current snapshot's property edge count.
func (l *liveGraph[V]) NumEdges() int64 { return l.store.NumEdges() }

// SnapImage captures a persistable GMATSNAP image of the property graph,
// compacting any pending overlay first (the snapshot format carries base
// structures only; the WAL owns whatever landed since).
func (l *liveGraph[V]) SnapImage(tag uint64) (*graphmat.SnapImage, error) {
	return graphmat.StoreImage[V](l.store, tag)
}

// OnCompact registers the store's persistent-mode hook; see
// graphmat.Store.OnCompact for the constraints on fn.
func (l *liveGraph[V]) OnCompact(fn func(epoch uint64)) { l.store.OnCompact(fn) }

// AcquirePin pins the current property-graph snapshot, transferring
// ownership (and the one-Release obligation) to the caller.
func (l *liveGraph[V]) AcquirePin() Pin {
	return l.store.Acquire()
}

// NewRawEdgeLookup adapts a normalized raw adjacency (row-major sorted,
// deduplicated — graphmat.NormalizeAdjacency) into the EdgeLookup oracle
// ApplyUpdates needs. The adjacency must already reflect the batch being
// applied.
func NewRawEdgeLookup(adj *graphmat.COO[float32]) EdgeLookup {
	return func(src, dst uint32) (float32, bool) {
		return graphmat.LookupEdge(adj, src, dst)
	}
}
