package algorithms

import (
	"context"
	"math"

	"graphmat"
)

// HITSVertex holds a vertex's hub and authority scores.
type HITSVertex struct {
	Hub, Auth float64
}

// hitsAuthProg is the authority half-step of HITS (Kleinberg): every vertex
// broadcasts its hub score along out-edges; receivers sum into their
// authority score. An extension beyond the paper's five algorithms that
// exercises the engine's In/Out direction machinery: the two half-steps
// traverse the matrix in opposite orientations, exactly the Gᵀ/G pair the
// graph maintains.
type hitsAuthProg struct{}

func (hitsAuthProg) SendMessage(_ graphmat.VertexID, prop HITSVertex) (float64, bool) {
	return prop.Hub, true
}
func (hitsAuthProg) ProcessMessage(m float64, _ float32, _ HITSVertex) float64 { return m }
func (hitsAuthProg) Reduce(a, b float64) float64                               { return a + b }
func (hitsAuthProg) Apply(r float64, _ graphmat.VertexID, prop *HITSVertex) bool {
	prop.Auth = r
	return false
}
func (hitsAuthProg) Direction() graphmat.Direction { return graphmat.Out }
func (hitsAuthProg) ProcessIgnoresDst()            {}
func (hitsAuthProg) ReducesBySumF64()              {}

// hitsHubProg is the hub half-step: every vertex broadcasts its authority
// score *backwards* along its in-edges (Direction In), so a hub accumulates
// the authority of the pages it points to.
type hitsHubProg struct{}

func (hitsHubProg) SendMessage(_ graphmat.VertexID, prop HITSVertex) (float64, bool) {
	return prop.Auth, true
}
func (hitsHubProg) ProcessMessage(m float64, _ float32, _ HITSVertex) float64 { return m }
func (hitsHubProg) Reduce(a, b float64) float64                               { return a + b }
func (hitsHubProg) Apply(r float64, _ graphmat.VertexID, prop *HITSVertex) bool {
	prop.Hub = r
	return false
}
func (hitsHubProg) Direction() graphmat.Direction { return graphmat.In }
func (hitsHubProg) ProcessIgnoresDst()            {}
func (hitsHubProg) ReducesBySumF64()              {}

// HITSOptions configures a HITS run.
type HITSOptions struct {
	Iterations int // 0 means 20
	Config     graphmat.Config
}

// NewHITSGraph builds the HITS property graph (self-loops removed, both
// traversal directions materialized).
func NewHITSGraph(adj *graphmat.COO[float32], partitions int) (*graphmat.Graph[HITSVertex, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.New[HITSVertex](adj, graphmat.Options{Partitions: partitions, Directions: graphmat.Both})
}

// NewHITSStore is NewHITSGraph as a versioned store: the same preprocessing
// and epoch-0 graph (both directions materialized), plus live edge updates
// via ApplyEdges.
func NewHITSStore(adj *graphmat.COO[float32], partitions int) (*graphmat.Store[HITSVertex, float32], error) {
	adj.RemoveSelfLoops()
	return graphmat.NewStore[HITSVertex](adj, graphmat.Options{Partitions: partitions, Directions: graphmat.Both})
}

// HITS computes hub and authority scores with iterations of the two
// half-steps, L2-normalizing after each (the standard formulation). Returns
// the final scores indexed by vertex.
//
// Deprecated: use RunHITS with WithIterations.
func HITS(g *graphmat.Graph[HITSVertex, float32], opt HITSOptions) ([]HITSVertex, graphmat.Stats) {
	ws := graphmat.NewWorkspace[float64, float64](int(g.NumVertices()), opt.Config.Vector)
	out, stats, err := HITSWithWorkspace(g, opt, ws)
	if err != nil {
		panic(err) // workspace built for this graph and config above
	}
	return out, stats
}

// HITSWithWorkspace is HITS with caller-managed engine scratch for repeated
// runs on one graph. Both half-steps carry float64 messages, so one
// workspace serves the whole run.
//
// Deprecated: use RunHITS with WithWorkspace.
func HITSWithWorkspace(g *graphmat.Graph[HITSVertex, float32], opt HITSOptions, ws *graphmat.Workspace[float64, float64]) ([]HITSVertex, graphmat.Stats, error) {
	return HITSContext(context.Background(), g, opt, ws, nil)
}

// HITSContext is HITS as a cancelable, observable session. The observer sees
// one report per engine superstep — two per HITS iteration (the authority
// half-step, then the hub half-step). A stopped run returns the scores as of
// the stop together with the stop cause.
//
// Deprecated: use RunHITS with WithObserver; this remains the
// implementation behind it.
func HITSContext(ctx context.Context, g *graphmat.Graph[HITSVertex, float32], opt HITSOptions, ws *graphmat.Workspace[float64, float64], obs Observer) ([]HITSVertex, graphmat.Stats, error) {
	iters := opt.Iterations
	if iters <= 0 {
		iters = 20
	}
	g.SetAllProps(HITSVertex{Hub: 1, Auth: 1})
	cfg := opt.Config
	cfg.MaxIterations = 1

	props := g.Props()
	normalize := func(get func(*HITSVertex) *float64) {
		var sum float64
		for i := range props {
			v := *get(&props[i])
			sum += v * v
		}
		if sum == 0 {
			return
		}
		inv := 1 / math.Sqrt(sum)
		for i := range props {
			*get(&props[i]) *= inv
		}
	}

	sess := newSession(obs)
	scores := func() []HITSVertex {
		out := make([]HITSVertex, len(props))
		copy(out, props)
		return out
	}
	var stats graphmat.Stats
	stats.Reason = graphmat.MaxIterations
	for it := 0; it < iters; it++ {
		// A vertex that receives no messages is never Applied, so the
		// accumulated field must be cleared up front: a page nobody links to
		// has authority 0, not its stale previous score.
		for i := range props {
			props[i].Auth = 0
		}
		g.SetAllActive()
		s, err := graphmat.RunContext(ctx, g, hitsAuthProg{}, cfg, ws, sess.options()...)
		accumulate(&stats, s)
		if err != nil {
			stats.Reason = s.Reason
			return scores(), stats, err
		}
		normalize(func(v *HITSVertex) *float64 { return &v.Auth })
		for i := range props {
			props[i].Hub = 0
		}
		g.SetAllActive()
		s, err = graphmat.RunContext(ctx, g, hitsHubProg{}, cfg, ws, sess.options()...)
		accumulate(&stats, s)
		if err != nil {
			stats.Reason = s.Reason
			return scores(), stats, err
		}
		normalize(func(v *HITSVertex) *float64 { return &v.Hub })
	}
	return scores(), stats, nil
}
