package algorithms

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"graphmat"
)

// This file is the package's named-constructor table: every ready-made
// algorithm registered under a stable name with a declared parameter schema,
// a graph builder (the algorithm-specific preprocessing of §5.1) and a
// uniform result shape. The analytics server dispatches HTTP queries through
// it and the graphmat CLI resolves -algorithm through the same table, so the
// two front ends can never drift apart.

// Params holds the parsed parameters of one registry run. Fields an
// algorithm does not declare in its Spec are rejected by ParseParams, not
// silently ignored.
type Params struct {
	// Source is the start vertex for traversals (bfs, sssp).
	Source uint32
	// Sources is the personalization set for ppr; empty means {Source}.
	Sources []uint32
	// Iterations caps iterative algorithms (pagerank, ppr, hits); 0 means
	// the algorithm's default.
	Iterations int
	// Tolerance is the convergence threshold for pagerank/ppr.
	Tolerance float64
	// RestartProb is the teleport probability for pagerank/ppr; 0 means 0.15.
	RestartProb float64
	// Threads is the engine worker count; 0 means GOMAXPROCS. Results are
	// deterministic across thread counts (partitions own disjoint output
	// ranges and reduce in a fixed order), so Threads is a performance knob,
	// not a semantic one.
	Threads int
	// Mode selects the engine's SpMV kernel (Auto, Pull or Push). Like
	// Threads it is a performance knob: all modes produce bit-identical
	// results — the engine's differential suite asserts it.
	Mode graphmat.Mode
}

// Key returns a canonical cache key for the parameters. Threads and Mode are
// excluded: neither can change the result, only how fast it arrives.
func (p Params) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "src=%d;srcs=%v;it=%d;tol=%g;r=%g", p.Source, p.Sources, p.Iterations, p.Tolerance, p.RestartProb)
	return b.String()
}

func (p Params) config() graphmat.Config {
	return graphmat.Config{Threads: p.Threads, Mode: p.Mode}
}

// Result is the uniform output of a registry run: a per-vertex value series
// (rank, distance, component label), optional named extra series (HITS hub
// and authority), an optional scalar (triangle count), the engine stats, and
// the property-graph epoch the run was pinned to.
type Result struct {
	Values []float64            `json:"values,omitempty"`
	Series map[string][]float64 `json:"series,omitempty"`
	Count  *int64               `json:"count,omitempty"`
	Stats  graphmat.Stats       `json:"stats"`
	// Epoch is the snapshot version the run executed against: 0 for the
	// as-built graph, +1 per update batch applied to the instance before the
	// run started. A run in flight keeps its epoch whatever updates land
	// meanwhile.
	Epoch uint64 `json:"epoch"`
}

// ParamKind is the type of one declared parameter.
type ParamKind int

const (
	// Uint is a non-negative integer parameter.
	Uint ParamKind = iota
	// Float is a floating-point parameter.
	Float
	// UintList is a list of non-negative integers.
	UintList
)

// String names the kind for API listings.
func (k ParamKind) String() string {
	switch k {
	case Uint:
		return "uint"
	case Float:
		return "float"
	case UintList:
		return "uint_list"
	}
	return "unknown"
}

// ParamSpec declares one parameter an algorithm accepts.
type ParamSpec struct {
	Name string    `json:"name"`
	Kind ParamKind `json:"-"`
	Desc string    `json:"desc"`
}

// Instance is an algorithm bound to a built property graph, ready to run
// queries. The property graph is versioned: ApplyUpdates publishes a new
// epoch, runs pin the epoch current when they start, and a run in flight is
// never disturbed by updates landing under it. Run mutates the pinned
// snapshot's vertex state, so it is NOT safe for concurrent use on one
// Instance; callers serialize (the server holds a per-instance lock).
// ApplyUpdates itself may race freely with runs — that is the point.
type Instance interface {
	// Run executes the algorithm. scratch, if non-nil, must be a value
	// returned by NewScratch on an instance over the same graph; nil
	// allocates fresh scratch for this run. It is RunContext without a
	// context or observer.
	Run(p Params, scratch any) (Result, error)
	// RunContext executes the algorithm under ctx: cancellation and
	// deadlines stop the engine cooperatively mid-run, and obs, when
	// non-nil, receives one progress report per superstep. A stopped run
	// returns the error alongside a Result whose Stats.Reason records the
	// stop cause.
	RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error)
	// RunBatch executes the algorithm once per source in p.Sources (falling
	// back to {p.Source} when empty) as one multi-source block run on one
	// pinned snapshot: per-source results are bit-identical to the
	// corresponding single-source Run calls, but chunks of up to
	// graphmat.MaxBlockSources sources share each adjacency sweep.
	// Algorithms with no source parameter return ErrBatchUnsupported (their
	// Spec says Batchable: false). Like Run, not safe for concurrent use on
	// one Instance.
	RunBatch(ctx context.Context, p Params, obs Observer) (BatchResult, error)
	// RunBatchPinned is RunBatch against a snapshot the caller already
	// pinned with AcquirePin: the run executes on exactly that epoch's
	// edge set, whatever updates landed since the pin was taken. The pin
	// stays owned by the caller (Release after the call returns);
	// algorithms with no source parameter return ErrBatchUnsupported.
	RunBatchPinned(ctx context.Context, pin Pin, p Params, obs Observer) (BatchResult, error)
	// AcquirePin pins the instance's current property-graph snapshot and
	// hands ownership to the caller: exactly one Release per pin. The
	// serving layer's admission batcher pins at admission time so a batch
	// window that straddles an update still answers every waiter from the
	// epoch its batch key promised.
	AcquirePin() Pin
	// NewScratch allocates the reusable engine workspace for this
	// (algorithm, graph) pair, for callers that pool scratch across runs.
	NewScratch() any
	// NumVertices reports the built property graph's vertex count.
	NumVertices() uint32
	// NumEdges reports the current snapshot's property edge count.
	NumEdges() int64
	// ApplyUpdates applies a batch of RAW edge updates, translated through
	// the algorithm's preprocessing (self-loop removal, symmetrization,
	// upper-triangle restriction), and publishes a new snapshot epoch.
	// lookup must reflect the raw edge set AFTER the batch; algorithms whose
	// preprocessing keeps edges directed ignore it and accept nil.
	ApplyUpdates(batch []EdgeUpdate, lookup EdgeLookup) (UpdateResult, error)
	// Epoch reports the property graph's current snapshot epoch.
	Epoch() uint64
	// StoreStats exposes the versioned store's counters (overlay size,
	// compactions, pinned snapshots).
	StoreStats() graphmat.StoreStats
	// SnapImage captures a persistable GMATSNAP image of the property
	// graph's current state, compacting any pending overlay first. tag is
	// the serving layer's consistency mark (the raw master-copy epoch the
	// image reflects), stored verbatim.
	SnapImage(tag uint64) (*graphmat.SnapImage, error)
	// OnCompact registers the property-graph store's persistent-mode hook:
	// fn runs synchronously after every compaction publish, before the
	// write that triggered it returns. See graphmat.Store.OnCompact for
	// the constraints on fn.
	OnCompact(fn func(epoch uint64))
}

// Pin is one pinned property-graph snapshot, held across calls so a run
// can be scheduled now and executed later against the same epoch. Epoch
// reports the pinned version; Release discharges the pin (exactly once).
// Values are produced by Instance.AcquirePin and consumed by
// Instance.RunBatchPinned.
type Pin interface {
	Epoch() uint64
	Release()
}

// Spec is one registry entry.
type Spec struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Params      []ParamSpec `json:"params"`
	// Batchable marks algorithms whose Instance supports multi-source
	// RunBatch (source-parameterized traversals and personalized ranking);
	// the serving layer only coalesces requests for batchable algorithms.
	Batchable bool `json:"batchable"`
	// Build constructs the algorithm's property graph from adjacency
	// triples, applying the algorithm's preprocessing. The input is
	// consumed (sorted, deduplicated, possibly symmetrized in place); pass
	// a clone to keep the original.
	Build func(adj *graphmat.COO[float32], partitions int) (Instance, error) `json:"-"`
	// Open rebuilds the algorithm's instance from a persisted snapshot
	// image of its property graph (written by Instance.SnapImage) without
	// re-running Build's preprocessing or any partition construction: the
	// image already IS the preprocessed, partitioned graph. This is the
	// instant-restart path; results must be bit-identical to an instance
	// Built from the original input — the snapshot differential suite
	// asserts it for every registered algorithm.
	Open func(img *graphmat.SnapImage) (Instance, error) `json:"-"`
}

// ParseParams validates raw key/value parameters (JSON-decoded: numbers as
// float64, lists as []any) against the spec's declared schema. Unknown keys
// error. "threads" and "mode" are accepted for every algorithm — both are
// engine performance knobs that cannot change a result.
func (s Spec) ParseParams(raw map[string]any) (Params, error) {
	var p Params
	for key, val := range raw {
		if key == "threads" {
			n, err := asUint(val)
			if err != nil {
				return p, fmt.Errorf("parameter threads: %w", err)
			}
			p.Threads = int(n)
			continue
		}
		if key == "mode" {
			name, ok := val.(string)
			if !ok {
				return p, fmt.Errorf("parameter mode: expected a string (auto, pull or push), got %T", val)
			}
			mode, err := graphmat.ParseMode(name)
			if err != nil {
				return p, fmt.Errorf("parameter mode: %w", err)
			}
			p.Mode = mode
			continue
		}
		var spec *ParamSpec
		for i := range s.Params {
			if s.Params[i].Name == key {
				spec = &s.Params[i]
				break
			}
		}
		if spec == nil {
			return p, fmt.Errorf("algorithm %s does not accept parameter %q", s.Name, key)
		}
		switch spec.Kind {
		case Uint:
			n, err := asUint(val)
			if err != nil {
				return p, fmt.Errorf("parameter %s: %w", key, err)
			}
			switch key {
			case "source":
				p.Source = uint32(n)
			case "iters":
				p.Iterations = int(n)
			}
		case Float:
			f, err := asFloat(val)
			if err != nil {
				return p, fmt.Errorf("parameter %s: %w", key, err)
			}
			switch key {
			case "tolerance":
				p.Tolerance = f
			case "restart":
				p.RestartProb = f
			}
		case UintList:
			list, ok := val.([]any)
			if !ok {
				return p, fmt.Errorf("parameter %s: expected a list of vertex ids", key)
			}
			for _, item := range list {
				n, err := asUint(item)
				if err != nil {
					return p, fmt.Errorf("parameter %s: %w", key, err)
				}
				p.Sources = append(p.Sources, uint32(n))
			}
		}
	}
	return p, nil
}

// asUint parses a non-negative integer no larger than math.MaxUint32 (the
// engine's vertex-id and iteration domain), so narrowing to uint32/int below
// can never silently truncate.
func asUint(v any) (uint64, error) {
	switch x := v.(type) {
	case float64:
		if x < 0 || x != float64(uint64(x)) {
			return 0, fmt.Errorf("expected a non-negative integer, got %v", x)
		}
		if x > math.MaxUint32 {
			return 0, fmt.Errorf("value %v exceeds the maximum of %d", x, uint64(math.MaxUint32))
		}
		return uint64(x), nil
	case int:
		if x < 0 {
			return 0, fmt.Errorf("expected a non-negative integer, got %v", x)
		}
		if uint64(x) > math.MaxUint32 {
			return 0, fmt.Errorf("value %v exceeds the maximum of %d", x, uint64(math.MaxUint32))
		}
		return uint64(x), nil
	default:
		return 0, fmt.Errorf("expected a non-negative integer, got %T", v)
	}
}

func asFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int:
		return float64(x), nil
	default:
		return 0, fmt.Errorf("expected a number, got %T", v)
	}
}

var registry = map[string]Spec{}

// Register adds a spec to the registry; duplicate names panic (registration
// happens at init time).
func Register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("algorithms: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered algorithm names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns all registered specs, sorted by name.
func Specs() []Spec {
	specs := make([]Spec, 0, len(registry))
	for _, n := range Names() {
		specs = append(specs, registry[n])
	}
	return specs
}

var (
	paramSource    = ParamSpec{Name: "source", Kind: Uint, Desc: "start vertex id"}
	paramSources   = ParamSpec{Name: "sources", Kind: UintList, Desc: "personalization vertex ids"}
	paramIters     = ParamSpec{Name: "iters", Kind: Uint, Desc: "iteration cap (0 = default)"}
	paramTolerance = ParamSpec{Name: "tolerance", Kind: Float, Desc: "convergence threshold"}
	paramRestart   = ParamSpec{Name: "restart", Kind: Float, Desc: "teleport probability (0 = 0.15)"}
)

func init() {
	Register(Spec{
		Name:        "pagerank",
		Description: "PageRank over out-edges (paper equation 1)",
		Params:      []ParamSpec{paramIters, paramTolerance, paramRestart},
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewPageRankStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &pagerankInstance{liveGraph: liveGraph[PRVertex]{store: st, kind: updDirected}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[PRVertex](img)
			if err != nil {
				return nil, err
			}
			return &pagerankInstance{liveGraph: liveGraph[PRVertex]{store: st, kind: updDirected}}, nil
		},
	})
	Register(Spec{
		Name:        "bfs",
		Description: "breadth-first hop distances on the symmetrized graph",
		Params:      []ParamSpec{paramSource, paramSources},
		Batchable:   true,
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewBFSStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &bfsInstance{liveGraph[uint32]{store: st, kind: updSymmetric}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[uint32](img)
			if err != nil {
				return nil, err
			}
			return &bfsInstance{liveGraph[uint32]{store: st, kind: updSymmetric}}, nil
		},
	})
	Register(Spec{
		Name:        "sssp",
		Description: "single-source shortest paths (frontier Bellman-Ford)",
		Params:      []ParamSpec{paramSource, paramSources},
		Batchable:   true,
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewSSSPStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &ssspInstance{liveGraph[float32]{store: st, kind: updDirected}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[float32](img)
			if err != nil {
				return nil, err
			}
			return &ssspInstance{liveGraph[float32]{store: st, kind: updDirected}}, nil
		},
	})
	Register(Spec{
		Name:        "components",
		Description: "connected components by min-label propagation",
		Params:      nil,
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewCCStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &componentsInstance{liveGraph: liveGraph[uint32]{store: st, kind: updSymmetric}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[uint32](img)
			if err != nil {
				return nil, err
			}
			return &componentsInstance{liveGraph: liveGraph[uint32]{store: st, kind: updSymmetric}}, nil
		},
	})
	Register(Spec{
		Name:        "ppr",
		Description: "personalized PageRank toward a source set",
		Params:      []ParamSpec{paramSource, paramSources, paramIters, paramTolerance, paramRestart},
		Batchable:   true,
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewPersonalizedPageRankStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &pprInstance{liveGraph[PPRVertex]{store: st, kind: updDirected}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[PPRVertex](img)
			if err != nil {
				return nil, err
			}
			return &pprInstance{liveGraph[PPRVertex]{store: st, kind: updDirected}}, nil
		},
	})
	Register(Spec{
		Name:        "reachability",
		Description: "directed reachability over the boolean (OR, AND) semiring",
		Params:      []ParamSpec{paramSource, paramSources},
		Batchable:   true,
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewReachabilityStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &reachabilityInstance{liveGraph[uint32]{store: st, kind: updDirected}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[uint32](img)
			if err != nil {
				return nil, err
			}
			return &reachabilityInstance{liveGraph[uint32]{store: st, kind: updDirected}}, nil
		},
	})
	Register(Spec{
		Name:        "widest",
		Description: "widest (bottleneck) paths over the (max, min) semiring",
		Params:      []ParamSpec{paramSource, paramSources},
		Batchable:   true,
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewWidestPathStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &widestInstance{liveGraph[float32]{store: st, kind: updDirected}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[float32](img)
			if err != nil {
				return nil, err
			}
			return &widestInstance{liveGraph[float32]{store: st, kind: updDirected}}, nil
		},
	})
	Register(Spec{
		Name:        "triangles",
		Description: "triangle count via the two-phase neighbor-intersection pipeline",
		Params:      nil,
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewTriangleStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &trianglesInstance{liveGraph: liveGraph[TCVertex]{store: st, kind: updUpperTriangle}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[TCVertex](img)
			if err != nil {
				return nil, err
			}
			return &trianglesInstance{liveGraph: liveGraph[TCVertex]{store: st, kind: updUpperTriangle}}, nil
		},
	})
	Register(Spec{
		Name:        "hits",
		Description: "HITS hub and authority scores (L2-normalized half-steps)",
		Params:      []ParamSpec{paramIters},
		Build: func(adj *graphmat.COO[float32], partitions int) (Instance, error) {
			st, err := NewHITSStore(adj, partitions)
			if err != nil {
				return nil, err
			}
			return &hitsInstance{liveGraph: liveGraph[HITSVertex]{store: st, kind: updDirected}}, nil
		},
		Open: func(img *graphmat.SnapImage) (Instance, error) {
			st, err := graphmat.NewStoreFromImage[HITSVertex](img)
			if err != nil {
				return nil, err
			}
			return &hitsInstance{liveGraph: liveGraph[HITSVertex]{store: st, kind: updDirected}}, nil
		},
	})
}

func checkSource(v uint32, n uint32, what string) error {
	if v >= n {
		return fmt.Errorf("%s vertex %d out of range (graph has %d vertices)", what, v, n)
	}
	return nil
}

// noBatch is the RunBatch stub embedded by instances of algorithms with no
// source parameter to batch over.
type noBatch struct{}

func (noBatch) RunBatch(context.Context, Params, Observer) (BatchResult, error) {
	return BatchResult{}, ErrBatchUnsupported
}

func (noBatch) RunBatchPinned(context.Context, Pin, Params, Observer) (BatchResult, error) {
	return BatchResult{}, ErrBatchUnsupported
}

// batchSources resolves the source list of a RunBatch call: p.Sources, with
// {p.Source} as the single-source fallback so every Run-able parameter set
// is also RunBatch-able.
func batchSources(p Params) []uint32 {
	if len(p.Sources) > 0 {
		return p.Sources
	}
	return []uint32{p.Source}
}

// pinnedSnap coerces a Pin handed to RunBatchPinned back to the instance's
// concrete snapshot type. A mismatch means the caller pinned a different
// instance's graph — a programming error surfaced as an error, not a panic,
// because the serving layer routes pins across goroutines.
func pinnedSnap[V any](pin Pin) (*graphmat.Snapshot[V, float32], error) {
	s, ok := pin.(*graphmat.Snapshot[V, float32])
	if !ok {
		return nil, fmt.Errorf("algorithms: pin of type %T does not belong to this algorithm's property graph", pin)
	}
	return s, nil
}

// typedScratch coerces a pooled scratch value to the instance's workspace
// type, allocating a fresh one when the caller passed nil.
func typedScratch[T any](scratch any, fresh func() any) (T, error) {
	if scratch == nil {
		scratch = fresh()
	}
	t, ok := scratch.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("scratch type %T does not belong to this algorithm", scratch)
	}
	return t, nil
}

type pagerankInstance struct {
	liveGraph[PRVertex]
	noBatch
}

func (i *pagerankInstance) NewScratch() any {
	return graphmat.NewWorkspace[float64, float64](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *pagerankInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *pagerankInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	ws, err := typedScratch[*graphmat.Workspace[float64, float64]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	opt := PageRankOptions{MaxIterations: p.Iterations, Tolerance: p.Tolerance, RestartProb: p.RestartProb, Config: p.config()}
	ranks, stats, err := PageRankContext(ctx, snap.Graph(), opt, ws, obs)
	return Result{Values: ranks, Stats: stats, Epoch: snap.Epoch()}, err
}

type bfsInstance struct {
	liveGraph[uint32]
}

func (i *bfsInstance) NewScratch() any {
	return graphmat.NewWorkspace[uint32, uint32](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *bfsInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *bfsInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	if err := checkSource(p.Source, i.NumVertices(), "source"); err != nil {
		return Result{}, err
	}
	ws, err := typedScratch[*graphmat.Workspace[uint32, uint32]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	dist, stats, err := BFSContext(ctx, snap.Graph(), p.Source, p.config(), ws, obs)
	return Result{Values: uintValues(dist), Stats: stats, Epoch: snap.Epoch()}, err
}

type ssspInstance struct {
	liveGraph[float32]
}

func (i *ssspInstance) NewScratch() any {
	return graphmat.NewWorkspace[float32, float32](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *ssspInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *ssspInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	if err := checkSource(p.Source, i.NumVertices(), "source"); err != nil {
		return Result{}, err
	}
	ws, err := typedScratch[*graphmat.Workspace[float32, float32]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	dist, stats, err := SSSPContext(ctx, snap.Graph(), p.Source, p.config(), ws, obs)
	values := make([]float64, len(dist))
	for v, d := range dist {
		values[v] = float64(d)
	}
	return Result{Values: values, Stats: stats, Epoch: snap.Epoch()}, err
}

type componentsInstance struct {
	liveGraph[uint32]
	noBatch
}

func (i *componentsInstance) NewScratch() any {
	return graphmat.NewWorkspace[uint32, uint32](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *componentsInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *componentsInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	ws, err := typedScratch[*graphmat.Workspace[uint32, uint32]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	labels, stats, err := ConnectedComponentsContext(ctx, snap.Graph(), p.config(), ws, obs)
	return Result{Values: uintValues(labels), Stats: stats, Epoch: snap.Epoch()}, err
}

type pprInstance struct {
	liveGraph[PPRVertex]
}

func (i *pprInstance) NewScratch() any {
	return graphmat.NewWorkspace[float64, float64](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *pprInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *pprInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	sources := p.Sources
	if len(sources) == 0 {
		sources = []uint32{p.Source}
	}
	for _, s := range sources {
		if err := checkSource(s, i.NumVertices(), "personalization"); err != nil {
			return Result{}, err
		}
	}
	ws, err := typedScratch[*graphmat.Workspace[float64, float64]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	opt := PageRankOptions{MaxIterations: p.Iterations, Tolerance: p.Tolerance, RestartProb: p.RestartProb, Config: p.config()}
	ranks, stats, err := PersonalizedPageRankContext(ctx, snap.Graph(), sources, opt, ws, obs)
	return Result{Values: ranks, Stats: stats, Epoch: snap.Epoch()}, err
}

type trianglesInstance struct {
	liveGraph[TCVertex]
	noBatch
}

func (i *trianglesInstance) NewScratch() any {
	return NewTriangleScratch(int(i.NumVertices()), graphmat.Bitvector)
}
func (i *trianglesInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *trianglesInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	sc, err := typedScratch[*TriangleScratch](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	count, stats, err := TriangleCountContext(ctx, snap.Graph(), p.config(), sc, obs)
	return Result{Count: &count, Stats: stats, Epoch: snap.Epoch()}, err
}

type hitsInstance struct {
	liveGraph[HITSVertex]
	noBatch
}

func (i *hitsInstance) NewScratch() any {
	return graphmat.NewWorkspace[float64, float64](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *hitsInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *hitsInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	ws, err := typedScratch[*graphmat.Workspace[float64, float64]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	scores, stats, err := HITSContext(ctx, snap.Graph(), HITSOptions{Iterations: p.Iterations, Config: p.config()}, ws, obs)
	hub := make([]float64, len(scores))
	auth := make([]float64, len(scores))
	for v, s := range scores {
		hub[v] = s.Hub
		auth[v] = s.Auth
	}
	// A stopped run still carries the scores as of the stop, matching the
	// other algorithms' partial-result contract.
	return Result{Series: map[string][]float64{"hub": hub, "auth": auth}, Stats: stats, Epoch: snap.Epoch()}, err
}

// uintValues widens a uint32 result series to the registry's float64 result
// shape; uint32 is exactly representable in float64, so the conversion is
// lossless.
func uintValues(s []uint32) []float64 {
	out := make([]float64, len(s))
	for v, x := range s {
		out[v] = float64(x)
	}
	return out
}

// RunBatch executes one BFS per source as a single multi-source block run;
// per-source distances are bit-identical to single-source Run calls.
func (i *bfsInstance) RunBatch(ctx context.Context, p Params, obs Observer) (BatchResult, error) {
	snap := i.store.Acquire()
	defer snap.Release()
	return i.runBatch(ctx, snap, p, obs)
}

func (i *bfsInstance) RunBatchPinned(ctx context.Context, pin Pin, p Params, obs Observer) (BatchResult, error) {
	snap, err := pinnedSnap[uint32](pin)
	if err != nil {
		return BatchResult{}, err
	}
	return i.runBatch(ctx, snap, p, obs)
}

func (i *bfsInstance) runBatch(ctx context.Context, snap *graphmat.Snapshot[uint32, float32], p Params, obs Observer) (BatchResult, error) {
	sources := batchSources(p)
	dists, stats, err := RunBFSBatch(ctx, snap.Graph(), sources, WithConfig(p.config()), WithObserver(obs))
	values := make([][]float64, len(dists))
	for s, d := range dists {
		values[s] = uintValues(d)
	}
	return BatchResult{Sources: sources, Values: values, Stats: stats, Epoch: snap.Epoch()}, err
}

// RunBatch executes one SSSP per source as a single multi-source block run.
func (i *ssspInstance) RunBatch(ctx context.Context, p Params, obs Observer) (BatchResult, error) {
	snap := i.store.Acquire()
	defer snap.Release()
	return i.runBatch(ctx, snap, p, obs)
}

func (i *ssspInstance) RunBatchPinned(ctx context.Context, pin Pin, p Params, obs Observer) (BatchResult, error) {
	snap, err := pinnedSnap[float32](pin)
	if err != nil {
		return BatchResult{}, err
	}
	return i.runBatch(ctx, snap, p, obs)
}

func (i *ssspInstance) runBatch(ctx context.Context, snap *graphmat.Snapshot[float32, float32], p Params, obs Observer) (BatchResult, error) {
	sources := batchSources(p)
	dists, stats, err := RunSSSPBatch(ctx, snap.Graph(), sources, WithConfig(p.config()), WithObserver(obs))
	values := make([][]float64, len(dists))
	for s, d := range dists {
		row := make([]float64, len(d))
		for v, x := range d {
			row[v] = float64(x)
		}
		values[s] = row
	}
	return BatchResult{Sources: sources, Values: values, Stats: stats, Epoch: snap.Epoch()}, err
}

// RunBatch executes one single-source personalized PageRank per source as a
// multi-source block run. Note the semantic difference from Run: Run with k
// sources computes ONE rank vector personalized to the whole set, RunBatch
// computes k independent vectors, one per source.
func (i *pprInstance) RunBatch(ctx context.Context, p Params, obs Observer) (BatchResult, error) {
	snap := i.store.Acquire()
	defer snap.Release()
	return i.runBatch(ctx, snap, p, obs)
}

func (i *pprInstance) RunBatchPinned(ctx context.Context, pin Pin, p Params, obs Observer) (BatchResult, error) {
	snap, err := pinnedSnap[PPRVertex](pin)
	if err != nil {
		return BatchResult{}, err
	}
	return i.runBatch(ctx, snap, p, obs)
}

func (i *pprInstance) runBatch(ctx context.Context, snap *graphmat.Snapshot[PPRVertex, float32], p Params, obs Observer) (BatchResult, error) {
	sources := batchSources(p)
	values, stats, err := RunPersonalizedPageRankBatch(ctx, snap.Graph(), sources,
		WithConfig(p.config()), WithIterations(p.Iterations), WithTolerance(p.Tolerance), WithRestartProb(p.RestartProb), WithObserver(obs))
	return BatchResult{Sources: sources, Values: values, Stats: stats, Epoch: snap.Epoch()}, err
}

type reachabilityInstance struct {
	liveGraph[uint32]
}

func (i *reachabilityInstance) NewScratch() any {
	return graphmat.NewWorkspace[uint32, uint32](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *reachabilityInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *reachabilityInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	if err := checkSource(p.Source, i.NumVertices(), "source"); err != nil {
		return Result{}, err
	}
	ws, err := typedScratch[*graphmat.Workspace[uint32, uint32]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	reached, stats, err := RunReachability(ctx, snap.Graph(), p.Source, WithConfig(p.config()), WithWorkspace(ws), WithObserver(obs))
	return Result{Values: uintValues(reached), Stats: stats, Epoch: snap.Epoch()}, err
}
func (i *reachabilityInstance) RunBatch(ctx context.Context, p Params, obs Observer) (BatchResult, error) {
	snap := i.store.Acquire()
	defer snap.Release()
	return i.runBatch(ctx, snap, p, obs)
}

func (i *reachabilityInstance) RunBatchPinned(ctx context.Context, pin Pin, p Params, obs Observer) (BatchResult, error) {
	snap, err := pinnedSnap[uint32](pin)
	if err != nil {
		return BatchResult{}, err
	}
	return i.runBatch(ctx, snap, p, obs)
}

func (i *reachabilityInstance) runBatch(ctx context.Context, snap *graphmat.Snapshot[uint32, float32], p Params, obs Observer) (BatchResult, error) {
	sources := batchSources(p)
	flags, stats, err := RunReachabilityBatch(ctx, snap.Graph(), sources, WithConfig(p.config()), WithObserver(obs))
	values := make([][]float64, len(flags))
	for s, f := range flags {
		values[s] = uintValues(f)
	}
	return BatchResult{Sources: sources, Values: values, Stats: stats, Epoch: snap.Epoch()}, err
}

type widestInstance struct {
	liveGraph[float32]
}

func (i *widestInstance) NewScratch() any {
	return graphmat.NewWorkspace[float32, float32](int(i.NumVertices()), graphmat.Bitvector)
}
func (i *widestInstance) Run(p Params, scratch any) (Result, error) {
	return i.RunContext(context.Background(), p, scratch, nil)
}
func (i *widestInstance) RunContext(ctx context.Context, p Params, scratch any, obs Observer) (Result, error) {
	if err := checkSource(p.Source, i.NumVertices(), "source"); err != nil {
		return Result{}, err
	}
	ws, err := typedScratch[*graphmat.Workspace[float32, float32]](scratch, i.NewScratch)
	if err != nil {
		return Result{}, err
	}
	snap := i.store.Acquire()
	defer snap.Release()
	width, stats, err := RunWidestPath(ctx, snap.Graph(), p.Source, WithConfig(p.config()), WithWorkspace(ws), WithObserver(obs))
	values := make([]float64, len(width))
	for v, x := range width {
		values[v] = float64(x)
	}
	return Result{Values: values, Stats: stats, Epoch: snap.Epoch()}, err
}
func (i *widestInstance) RunBatch(ctx context.Context, p Params, obs Observer) (BatchResult, error) {
	snap := i.store.Acquire()
	defer snap.Release()
	return i.runBatch(ctx, snap, p, obs)
}

func (i *widestInstance) RunBatchPinned(ctx context.Context, pin Pin, p Params, obs Observer) (BatchResult, error) {
	snap, err := pinnedSnap[float32](pin)
	if err != nil {
		return BatchResult{}, err
	}
	return i.runBatch(ctx, snap, p, obs)
}

func (i *widestInstance) runBatch(ctx context.Context, snap *graphmat.Snapshot[float32, float32], p Params, obs Observer) (BatchResult, error) {
	sources := batchSources(p)
	widths, stats, err := RunWidestPathBatch(ctx, snap.Graph(), sources, WithConfig(p.config()), WithObserver(obs))
	values := make([][]float64, len(widths))
	for s, w := range widths {
		row := make([]float64, len(w))
		for v, x := range w {
			row[v] = float64(x)
		}
		values[s] = row
	}
	return BatchResult{Sources: sources, Values: values, Stats: stats, Epoch: snap.Epoch()}, err
}
