package graphmat_test

import (
	"runtime"
	"testing"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
)

// TestSchedSkewedPageRankSpeedup is the scheduler acceptance gate: on a
// partition-starved graph (2 partitions, 8 threads) pull PageRank under the
// pooled runtime must beat the per-call partition-granular fan-out by ≥1.3x.
// Per-call parallelism is capped at one goroutine per partition in the
// multiply phase, so at most 2 of the 8 workers do edge work; the pooled
// runtime's nnz-weighted shaping splits each partition into 64-aligned
// destination-row tasks and lets all 8 pull from the shared queues. The
// 1.3x bar is far below the ideal ratio, leaving headroom for CI noise.
//
// Gated on GOMAXPROCS≥8: below that the per-call baseline isn't actually
// starved relative to the machine and the ratio is meaningless.
func TestSchedSkewedPageRankSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("perf acceptance gate; skipped in -short mode")
	}
	if p := runtime.GOMAXPROCS(0); p < 8 {
		t.Skipf("GOMAXPROCS=%d < 8; the per-call baseline is not partition-starved", p)
	}
	if n := runtime.NumCPU(); n < 8 {
		// A forced GOMAXPROCS above the physical core count measures
		// context-switch thrash, not scheduling: 8 workers time-slicing
		// fewer cores serialize both runtimes.
		t.Skipf("NumCPU=%d < 8; oversubscribed workers would not run in parallel", n)
	}

	// Edge-dense RMAT (edge factor 32) so the shaper's column-sweep budget
	// admits a fine split: pull sub-tasks re-sweep the partition's live
	// columns, and a column-rich hypersparse graph would correctly be kept
	// coarse — the opposite of what this gate exercises.
	adj := gen.RMAT(gen.RMATOptions{Scale: 12, EdgeFactor: 32, Seed: 20150831, MaxWeight: 0})
	g, err := algorithms.NewPageRankGraph(adj, 2)
	if err != nil {
		t.Fatal(err)
	}
	ws := graphmat.NewWorkspace[float64, float64](int(g.NumVertices()), graphmat.Bitvector)

	// Best-of-N wall time per runtime: the minimum is the least-noisy
	// estimator for a CPU-bound run on a shared CI machine.
	measure := func(rt graphmat.Runtime) time.Duration {
		opt := algorithms.PageRankOptions{
			MaxIterations: 20,
			Config:        graphmat.Config{Threads: 8, Mode: graphmat.Pull, Runtime: rt},
		}
		best := time.Duration(0)
		for i := 0; i < 5; i++ {
			start := time.Now()
			if _, _, err := algorithms.PageRankWithWorkspace(g, opt, ws); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	// Warm both paths once (page-in, pool spawn) before timing.
	measure(graphmat.PerCall)
	pooled := measure(graphmat.Pooled)
	percall := measure(graphmat.PerCall)

	ratio := float64(percall) / float64(pooled)
	t.Logf("pooled %v, per-call %v, speedup %.2fx", pooled, percall, ratio)
	if ratio < 1.3 {
		t.Errorf("pooled runtime speedup %.2fx < 1.3x on skewed-partition PageRank (pooled %v, per-call %v)",
			ratio, pooled, percall)
	}
}
