// Command benchrecord re-records a benchmark baseline JSON: it runs a
// benchmark matrix through `go test -bench` and rewrites the baseline file
// with the runtime environment — GOOS/GOARCH, CPU model, GOMAXPROCS, the CPU
// SIMD feature flags, the kernel backends the box supports and the one
// selection picked — captured automatically instead of hand-edited.
//
// The default invocation is the engine kernel baseline behind `make
// bench-engine-record`:
//
//	go run ./cmd/benchrecord -out BENCH_engine.json
//
// which runs the backend × mode × workers matrix of BenchmarkEngineBFS and
// BenchmarkEnginePageRank (the backend dimension comes from the benchmarks
// themselves, which sweep kernels.Supported()).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"graphmat/internal/kernels"
)

type benchEntry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s,omitempty"`
	// Gomaxprocs is the GOMAXPROCS the run actually used — the -N suffix
	// go test appends to each result line. Recorded per entry (a -cpu list
	// runs the same benchmark at several values; the environment block only
	// has the recording machine's default).
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
	// Metrics carries any extra b.ReportMetric pairs from the run — the
	// engine benchmarks emit the scheduler's utilization counters here
	// (sched-tasks/op, steals/op, busy-util).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type environment struct {
	GOOS           string `json:"goos"`
	GOARCH         string `json:"goarch"`
	CPU            string `json:"cpu"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
	CPUFeatures    string `json:"cpu_features"`
	KernelBackends string `json:"kernel_backends"`
	KernelDefault  string `json:"kernel_default"`
	Note           string `json:"note,omitempty"`
}

type baseline struct {
	Description string       `json:"description"`
	Recorded    string       `json:"recorded"`
	Environment environment  `json:"environment"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "baseline file to rewrite")
	bench := flag.String("bench", "^BenchmarkEngine", "go test -bench pattern")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	note := flag.String("note", "", "extra note for the environment block")
	desc := flag.String("description", "", "description field; default derives from the invocation")
	flag.Parse()

	cmd := exec.Command("go", "test", "-bench="+*bench, "-benchtime="+*benchtime, "-run=^$", *pkg)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	var entries []benchEntry
	sc := bufio.NewScanner(outPipe)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the live bench output visible
		if e, ok := parseBenchLine(line); ok {
			entries = append(entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed from go test output"))
	}

	description := *desc
	if description == "" {
		description = fmt.Sprintf(
			"Engine kernel baseline: go test -bench '%s' -run '^$' -benchtime %s %s "+
				"(GRAPHMAT_BENCH_SHIFT default -3 -> RMAT scale 11, edgefactor 16; BFS from the "+
				"max-degree root, PageRank 10 fixed iterations). Matrix: kernel backend %s x "+
				"mode {pull, push, auto} x workers {1, 4, 8}. Recorded by cmd/benchrecord.",
			*bench, *benchtime, *pkg, backendSet())
	}
	b := baseline{
		Description: description,
		Recorded:    time.Now().Format("2006-01-02"),
		Environment: environment{
			GOOS:           runtime.GOOS,
			GOARCH:         runtime.GOARCH,
			CPU:            cpuModel(),
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
			CPUFeatures:    kernels.CPUFeatures(),
			KernelBackends: backendSet(),
			KernelDefault:  kernels.Active().String(),
			Note:           *note,
		},
		Benchmarks: entries,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchrecord: wrote %d results to %s\n", len(entries), *out)
}

func backendSet() string {
	var names []string
	for _, b := range kernels.Supported() {
		names = append(names, b.String())
	}
	return "{" + strings.Join(names, ", ") + "}"
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkEngineBFS/backend_avx2/mode_pull/workers_1-8   2149   561054 ns/op   81.06 MB/s   0.24 busy-util
//
// The trailing -N on the name is the GOMAXPROCS the run used; it is stripped
// from the name and recorded in the entry's Gomaxprocs field. Units beyond
// ns/op and MB/s (the engine benchmarks' scheduler utilization counters,
// B/op, allocs/op, custom b.ReportMetric pairs) land in the Metrics map.
func parseBenchLine(line string) (benchEntry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return benchEntry{}, false
	}
	name := f[0]
	procs := 1 // go test omits the -N suffix when GOMAXPROCS=1
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			procs = n
		}
	}
	e := benchEntry{Name: name, Gomaxprocs: procs}
	ok := false
	for i := 2; i < len(f); i++ {
		v, err := strconv.ParseFloat(f[i-1], 64)
		if err != nil {
			continue
		}
		switch f[i] {
		case "ns/op":
			e.NsPerOp, ok = v, true
		case "MB/s":
			e.MBPerS = v
		default:
			if _, err := strconv.ParseFloat(f[i], 64); err == nil {
				continue // f[i] is a value, not a unit (e.g. the iteration count)
			}
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[f[i]] = v
		}
	}
	return e, ok
}

// cpuModel reads the CPU model string from /proc/cpuinfo, falling back to the
// architecture name where the file or field is absent (non-Linux, arm64).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, found := strings.Cut(line, ":"); found {
			switch strings.TrimSpace(k) {
			case "model name", "Model", "cpu model":
				return strings.TrimSpace(v)
			}
		}
	}
	return runtime.GOARCH
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrecord:", err)
	os.Exit(1)
}
