// graphmatlint is the multichecker for the graphmatlint analyzer suite
// (internal/lint): snappin, detfold, ctxpoll, purefold, bannedcalls — the
// engine's correctness invariants, enforced at compile time.
//
// It runs two ways:
//
//	go vet -vettool=$(go env GOPATH)/bin/graphmatlint ./...   # vet protocol
//	graphmatlint ./...                                        # standalone
//
// The vet form is what CI runs: go vet hands the tool one type-checked
// package at a time (export data for dependencies included), covers test
// files, and caches results. The standalone form loads packages itself via
// `go list -export` and checks non-test sources; it exists so `make lint`
// and editors need no vet plumbing.
//
// The tool speaks cmd/go's vettool protocol (-V=full, -flags, unitchecker
// config files) with no dependency outside the standard library: the repo
// vendors nothing, so golang.org/x/tools/go/analysis/unitchecker is
// reimplemented here against internal/lint/analysis.
//
// Disable one analyzer with -<name>=false; configure with -<name>.<flag>.
// Suppress a single finding with an inline justified directive:
//
//	//lint:graphmat <analyzer> <justification>
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"graphmat/internal/lint"
	"graphmat/internal/lint/analysis"
)

func main() {
	analyzers := lint.All()

	fs := flag.NewFlagSet("graphmatlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphmatlint [flags] <packages|unitchecker.cfg>\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fs.PrintDefaults()
	}
	enabled := map[string]*bool{}
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (vet protocol)")

	args := os.Args[1:]
	// The two protocol probes cmd/go sends before any real work; they must
	// be answered before flag parsing (cmd/go passes exactly one of them).
	if len(args) == 1 && args[0] == "-V=full" {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlags(fs)
		return
	}

	fs.Parse(args)
	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitcheck(rest[0], active, *jsonOut))
	}
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	os.Exit(standalone(rest, active))
}

// printVersion implements -V=full: cmd/go uses the output (which must have
// the form "<name> version <version>...") as the tool's cache key, so the
// binary's own hash is baked in — editing the tool invalidates vet's cache.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("graphmatlint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// printFlags implements -flags: cmd/go asks which flags the tool accepts
// before forwarding any.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
}

// vetConfig is the JSON config cmd/go writes for each package when invoked
// as `go vet -vettool=...` (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by a vet config file.
// Exit codes follow unitchecker: 0 clean, 1 tool failure, 2 findings.
func unitcheck(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "graphmatlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The analyzers use no cross-package facts, but the protocol requires a
	// facts ("vetx") file for dependents to consume.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte("graphmatlint: no facts\n"), 0o666); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, no analysis wanted.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	files, info, pkg, err := typecheck(fset, cfg.GoFiles, cfg.ImportPath, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "graphmatlint: %v\n", err)
		return 1
	}

	findings, err := lint.Check(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphmatlint: %v\n", err)
		return 1
	}
	writeVetx()
	if jsonOut {
		printJSON(cfg.ImportPath, findings)
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// printJSON emits the unitchecker JSON shape:
// {"pkg": {"analyzer": [{"posn": ..., "message": ...}]}}.
func printJSON(pkgPath string, findings []lint.Finding) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{f.Pos.String(), f.Message})
	}
	data, err := json.MarshalIndent(map[string]map[string][]jsonDiag{pkgPath: byAnalyzer}, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// typecheck parses and type-checks one package against compiler export data
// supplied by lookup.
func typecheck(fset *token.FileSet, goFiles []string, importPath, compiler string, lookup func(string) (io.ReadCloser, error)) ([]*ast.File, *types.Info, *types.Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, build()),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, info, pkg, nil
}

func build() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	out, err := exec.Command("go", "env", "GOARCH").Output()
	if err != nil {
		return "amd64"
	}
	return strings.TrimSpace(string(out))
}

// listedPackage is the slice of `go list -json` output the standalone
// loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
}

// standalone loads and checks package patterns without vet: one
// `go list -deps -export -json` supplies the dependency export data, and
// each matched package is type-checked from source. Test files are not
// loaded in this mode (run via go vet for full coverage).
func standalone(patterns []string, analyzers []*analysis.Analyzer) int {
	targets, err := goList(append([]string{"-find"}, patterns...))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	want := map[string]bool{}
	for _, p := range targets {
		want[p.ImportPath] = true
	}
	all, err := goList(append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	exports := map[string]string{}
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	exit := 0
	for _, p := range all {
		if !want[p.ImportPath] {
			continue
		}
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "graphmatlint: skipping %s (cgo not supported)\n", p.ImportPath)
			continue
		}
		var goFiles []string
		for _, f := range p.GoFiles {
			goFiles = append(goFiles, p.Dir+string(os.PathSeparator)+f)
		}
		importMap := p.ImportMap
		fset := token.NewFileSet()
		files, info, pkg, err := typecheck(fset, goFiles, p.ImportPath, "gc", func(path string) (io.ReadCloser, error) {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphmatlint: %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		findings, err := lint.Check(analyzers, fset, files, pkg, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphmatlint: %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		for _, f := range findings {
			fmt.Printf("%s: %s\n", f.Pos, f.Message)
		}
		if len(findings) > 0 && exit == 0 {
			exit = 2
		}
	}
	return exit
}

// goList shells out to `go list -json` and decodes the package stream.
func goList(args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
