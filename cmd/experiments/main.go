// Command experiments regenerates the tables and figures of the GraphMat
// paper's evaluation section (§5) on synthetic stand-in datasets.
//
// Usage:
//
//	experiments -experiment all
//	experiments -experiment fig4a -shift 1 -threads 4
//	experiments -experiment fig7 -repeats 3
//
// Experiments: table1, fig4a, fig4b, fig4c, fig4d, fig4e, table2, table3,
// fig5, fig6, fig7, direction, all. Table 2/3 and Figure 6 are derived from
// the Figure 4 measurements and run them implicitly. The extra "converge"
// experiment uses the engine's per-superstep observer to report PageRank's
// convergence trajectory instead of end-to-end timings, and "direction"
// measures the push/pull/auto kernel ablation in the Figure 7 style.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/bench"
	"graphmat/internal/gen"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (table1, fig4a..fig4e, table2, table3, fig5, fig6, fig7, direction, converge, all)")
		shift      = flag.Int("shift", 0, "dataset size shift: each +1 doubles stand-in sizes toward paper scale")
		threads    = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		maxThreads = flag.Int("maxthreads", 0, "figure 5 sweep upper bound (0 = GOMAXPROCS)")
		prIters    = flag.Int("priters", 10, "PageRank iterations (time/iteration plots)")
		cfIters    = flag.Int("cfiters", 5, "CF iterations (time/iteration plots)")
		repeats    = flag.Int("repeats", 1, "repetitions per measurement (minimum kept)")
		dataset    = flag.String("dataset", "", "restrict to datasets whose name contains this substring")
		frameworks = flag.String("frameworks", "", "comma-separated framework filter (e.g. GraphMat,Native)")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	o := bench.Options{
		Shift: *shift, Threads: *threads, MaxThreads: *maxThreads,
		PRIters: *prIters, CFIters: *cfIters, Repeats: *repeats,
		DatasetFilter: *dataset, Verbose: !*quiet,
	}
	if *frameworks != "" {
		o.Frameworks = strings.Split(*frameworks, ",")
	}

	run(strings.ToLower(*experiment), o)
}

func run(experiment string, o bench.Options) {
	emit := func(t fmt.Stringer) { fmt.Println(t.String()) }

	var fig4 []*bench.Fig4Result
	needFig4 := func() []*bench.Fig4Result {
		if fig4 == nil {
			fig4 = []*bench.Fig4Result{
				bench.Fig4a(o), bench.Fig4b(o), bench.Fig4c(o), bench.Fig4d(o), bench.Fig4e(o),
			}
		}
		return fig4
	}

	switch experiment {
	case "table1":
		emit(bench.Table1(o))
	case "fig4a":
		emit(bench.Fig4a(o).Table())
	case "fig4b":
		emit(bench.Fig4b(o).Table())
	case "fig4c":
		emit(bench.Fig4c(o).Table())
	case "fig4d":
		emit(bench.Fig4d(o).Table())
	case "fig4e":
		emit(bench.Fig4e(o).Table())
	case "table2":
		emit(bench.Table2(needFig4()))
	case "table3":
		emit(bench.Table3(needFig4()))
	case "fig5":
		for _, t := range bench.Fig5(o) {
			emit(t)
		}
	case "fig6":
		for _, t := range bench.Fig6(needFig4()) {
			emit(t)
		}
	case "fig7":
		emit(bench.Fig7(o))
	case "direction":
		emit(bench.DirectionOptimization(o))
	case "converge":
		convergence(o)
	case "all":
		emit(bench.Table1(o))
		for _, r := range needFig4() {
			emit(r.Table())
		}
		emit(bench.Table2(fig4))
		emit(bench.Table3(fig4))
		for _, t := range bench.Fig6(fig4) {
			emit(t)
		}
		for _, t := range bench.Fig5(o) {
			emit(t)
		}
		emit(bench.Fig7(o))
		emit(bench.DirectionOptimization(o))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", experiment)
		flag.Usage()
		os.Exit(2)
	}
}

// convergence runs PageRank on an RMAT stand-in with a per-superstep
// observer and prints the convergence trajectory: how many vertices still
// moved beyond the tolerance after each superstep, and the superstep's wall
// time. The trajectory is what the blocking experiments cannot show — the
// engine's whole-run timings collapse it into one number.
func convergence(o bench.Options) {
	scale := 14 + o.Shift
	iters := o.PRIters
	if iters < 30 {
		iters = 30
	}
	const tolerance = 1e-7
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20, MaxWeight: 0})
	g, err := algorithms.NewPageRankGraph(adj, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building pagerank graph: %v\n", err)
		os.Exit(1)
	}
	n := g.NumVertices()
	fmt.Printf("# PageRank convergence — RMAT scale %d (%d vertices, %d edges), tolerance %g\n",
		scale, n, g.NumEdges(), tolerance)
	fmt.Printf("%-5s  %12s  %12s  %9s  %9s\n", "iter", "unconverged", "frac", "step_ms", "total_ms")
	opt := algorithms.PageRankOptions{
		MaxIterations: iters,
		Tolerance:     tolerance,
		Config:        graphmat.Config{Threads: o.Threads},
	}
	_, stats, err := algorithms.PageRankContext(context.Background(), g, opt, nil,
		func(info graphmat.IterationInfo) error {
			fmt.Printf("%-5d  %12d  %12.6f  %9.3f  %9.3f\n",
				info.Iteration, info.NextActive, float64(info.NextActive)/float64(n),
				float64(info.Elapsed.Microseconds())/1000, float64(info.Total.Microseconds())/1000)
			return nil
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pagerank: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# %s after %d supersteps\n", stats.Reason, stats.Iterations)
}
