// Command graphmatd is the GraphMat analytics service: a long-running HTTP
// daemon that keeps graphs and engine scratch resident so many clients share
// one loaded graph across queries (the RedisGraph deployment model for a
// GraphBLAS-style engine).
//
// Usage:
//
//	graphmatd -addr :8765 -graph web=data/web.mtx -graph social=rmat:scale=16,edgefactor=16,seed=1
//	graphmatd -addr :8765 -data-dir /var/lib/graphmat -graph web=data/web.mtx
//
// With -data-dir, every registered graph checkpoints to an mmap-ready
// snapshot plus a write-ahead log under <data-dir>/<name>/; on restart the
// daemon boots from the snapshot (zero-copy map, no re-parse) and replays
// the WAL, so acked edge updates survive crashes.
//
// Endpoints (all under /v1; the unversioned forms are deprecated aliases
// answering with a Deprecation header):
//
//	GET    /v1/healthz                    liveness
//	GET    /v1/stats                      per-endpoint, per-algorithm, cache and batcher tallies
//	GET    /v1/algorithms                 available algorithms and their parameters
//	GET    /v1/openapi.json               machine-readable API description
//	GET    /v1/graphs                     registered graphs
//	POST   /v1/graphs                     register a graph: {"name":..., "path":...} or {"name":..., "generator":"rmat", "scale":14, ...}
//	POST   /v1/graphs?name=N&format=F     upload a graph body (format mtx, edgelist or bin), parsed server-side in parallel
//	GET    /v1/graphs/{name}              one graph's details
//	DELETE /v1/graphs/{name}              unregister a graph
//	POST   /v1/graphs/{name}/edges        apply a live edge-update batch
//	POST   /v1/graphs/{name}/run          unified run: {"algo":..., "sources":[...], "mode":..., "params":{...}, "timeout_ms":..., "stream":...}
//	POST   /v1/graphs/{name}/run/{algo}   run an algorithm; body holds its parameters
//
// Concurrent single-source /v1 run requests for the same (graph, algorithm,
// epoch, parameters) are coalesced into one multi-source block run within
// -batch-window, with per-source results fanned back out bit-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphmat/internal/server"
)

// graphFlags collects repeated -graph name=spec values.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ", ") }

func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8765", "listen address")
		cacheSize  = flag.Int("cache", 128, "result-cache capacity in entries (negative disables)")
		partitions = flag.Int("partitions", 0, "matrix partitions per graph build (0 = auto)")
		jobs       = flag.Int("j", 0, "ingestion workers for uploads and preloads (0 = GOMAXPROCS, 1 = sequential)")
		maxUpload  = flag.Int64("max-upload", 0, "largest accepted POST /graphs upload in bytes (0 = 1 GiB)")
		batchWin   = flag.Duration("batch-window", 0, "admission window coalescing concurrent single-source /v1 runs into multi-source batches (0 = 2ms default, negative disables)")
		dataDir    = flag.String("data-dir", "", "persistence root: graphs checkpoint to mmap-ready snapshots + WAL under this directory and reboot from them instantly (empty = volatile)")
		quiet      = flag.Bool("quiet", false, "suppress per-request logging")
		graphs     graphFlags
	)
	flag.Var(&graphs, "graph", "preload a graph as name=spec; spec is a file path or generator:k=v,... (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "graphmatd: ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	srv := server.New(server.Config{
		CacheSize:      *cacheSize,
		Partitions:     *partitions,
		Workers:        *jobs,
		MaxUploadBytes: *maxUpload,
		BatchWindow:    *batchWin,
		DataDir:        *dataDir,
		Logger:         reqLogger,
	})

	for _, spec := range graphs {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			logger.Fatalf("-graph %q: want name=path or name=generator:k=v,...", spec)
		}
		src, err := server.ParseSourceSpec(rest)
		if err != nil {
			logger.Fatalf("-graph %s: %v", name, err)
		}
		start := time.Now()
		if err := srv.AddGraph(name, src); err != nil {
			logger.Fatalf("-graph %s: %v", name, err)
		}
		logger.Printf("loaded %s (%s) in %s", name, src.Describe(), time.Since(start).Round(time.Millisecond))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("serving on %s", *addr)

	select {
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "graphmatd: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
