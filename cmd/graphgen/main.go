// Command graphgen generates the synthetic graphs used throughout the
// GraphMat reproduction: Graph500 RMAT graphs with the paper's parameter
// sets, power-law bipartite ratings graphs and 2-D road-style grids.
//
// Usage:
//
//	graphgen -kind rmat -scale 20 -ef 16 -params graph500 -o graph.mtx
//	graphgen -kind rmat -scale 15 -params triangle -format bin -o tc.bin
//	graphgen -kind bipartite -users 480189 -items 17770 -ratings 99072112 -o nf.mtx
//	graphgen -kind grid -width 1000 -height 500 -maxweight 10 -o road.mtx
//	graphgen -kind rmat -scale 18 -o g.mtx -updates 40000 -updates-del 0.3
//
// -updates additionally emits an NDJSON edge-update stream (deletes drawn
// from the generated edges, inserts fresh, plus a small adversarial slice)
// for update benchmarks, live-update demos and fuzz corpora.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

func main() {
	var (
		kind      = flag.String("kind", "rmat", "generator: rmat, bipartite, grid, er")
		out       = flag.String("o", "", "output path (required; extension .mtx, .bin or text)")
		seed      = flag.Uint64("seed", 1, "generator seed")
		maxWeight = flag.Int("maxweight", 0, "uniform integer edge weights in [1,maxweight]; 0 = unweighted")
		jobs      = flag.Int("j", 0, "sections in .bin output, encoded in parallel; readers fan sections out to workers (0 = default)")
		binV1     = flag.Bool("binv1", false, "write the legacy unsectioned GMATBIN1 format for .bin output")

		scale  = flag.Int("scale", 16, "rmat: vertices = 2^scale")
		ef     = flag.Int("ef", 16, "rmat/er: edges per vertex")
		params = flag.String("params", "graph500", "rmat parameter set: graph500, triangle, sssp24")

		users   = flag.Uint("users", 1000, "bipartite: user count")
		items   = flag.Uint("items", 100, "bipartite: item count")
		ratings = flag.Int("ratings", 10000, "bipartite: rating count")

		width  = flag.Uint("width", 100, "grid: width")
		height = flag.Uint("height", 100, "grid: height")

		updates     = flag.Int("updates", 0, "also emit an edge-update stream of this many insert/delete records against the generated graph")
		updatesOut  = flag.String("updates-out", "", "update-stream output path (NDJSON; default: <o>.updates)")
		updatesDel  = flag.Float64("updates-del", 0.3, "fraction of updates that delete existing edges")
		updatesSeed = flag.Uint64("updates-seed", 0, "update-stream seed (0 = derive from -seed)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	var coo *sparse.COO[float32]
	switch strings.ToLower(*kind) {
	case "rmat":
		var p gen.RMATParams
		switch strings.ToLower(*params) {
		case "graph500":
			p = gen.RMATGraph500
		case "triangle":
			p = gen.RMATTriangle
		case "sssp24":
			p = gen.RMATSSSP24
		default:
			fatal("unknown -params %q", *params)
		}
		coo = gen.RMAT(gen.RMATOptions{Scale: *scale, EdgeFactor: *ef, Params: p, Seed: *seed, MaxWeight: *maxWeight})
	case "bipartite":
		coo = gen.Bipartite(gen.BipartiteOptions{Users: uint32(*users), Items: uint32(*items), Ratings: *ratings, Seed: *seed})
	case "grid":
		coo = gen.Grid(gen.GridOptions{Width: uint32(*width), Height: uint32(*height), MaxWeight: *maxWeight, Seed: *seed})
	case "er":
		n := uint32(1) << *scale
		coo = gen.ErdosRenyi(n, int(n)*(*ef), *maxWeight, *seed)
	default:
		fatal("unknown -kind %q", *kind)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(*out, ".bin") && *binV1:
		err = graph.WriteBinary(f, coo)
	case strings.HasSuffix(*out, ".bin"):
		err = graph.WriteBinary2(f, coo, *jobs)
	default:
		err = graph.WriteMTX(f, coo)
	}
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, coo.NRows, len(coo.Entries))

	if *updates > 0 {
		path := *updatesOut
		if path == "" {
			path = *out + ".updates"
		}
		seed2 := *updatesSeed
		if seed2 == 0 {
			seed2 = *seed + 1
		}
		ops := gen.Updates(coo, gen.UpdateOptions{
			Count:          *updates,
			DeleteFraction: *updatesDel,
			MaxWeight:      *maxWeight,
			Seed:           seed2,
		})
		ups := make([]graph.Update[float32], len(ops))
		dels := 0
		for i, op := range ops {
			ups[i] = graph.Update[float32]{Src: op.Src, Dst: op.Dst, Val: op.Weight, Del: op.Del}
			if op.Del {
				dels++
			}
		}
		uf, err := os.Create(path)
		if err != nil {
			fatal("%v", err)
		}
		defer uf.Close()
		if err := graph.WriteUpdates(uf, ups); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s: %d updates (%d deletes)\n", path, len(ups), dels)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
