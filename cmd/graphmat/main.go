// Command graphmat runs one of the library's graph algorithms on a graph
// file, mirroring the workflow of the paper's C++ release (load graph, run
// vertex program, print results and timing).
//
// Usage:
//
//	graphmat -algorithm sssp -graph road.mtx -source 6
//	graphmat -algorithm pagerank -graph web.bin -iters 20 -top 10
//	graphmat -algorithm triangles -graph social.mtx
//	graphmat -algorithm cf -graph ratings.mtx -iters 10
//	graphmat -algorithm bfs -graph social.mtx -source 0
//	graphmat -algorithm cc -graph social.mtx
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"graphmat"
	"graphmat/algorithms"
)

func main() {
	var (
		algo    = flag.String("algorithm", "", "pagerank, bfs, sssp, triangles, cf, cc, degrees")
		path    = flag.String("graph", "", "graph file (.mtx, .bin, or text edge list)")
		source  = flag.Uint("source", 0, "bfs/sssp source vertex")
		iters   = flag.Int("iters", 10, "iterations for pagerank/cf")
		top     = flag.Int("top", 5, "print the top-k vertices of the result")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *algo == "" || *path == "" {
		fmt.Fprintln(os.Stderr, "graphmat: -algorithm and -graph are required")
		flag.Usage()
		os.Exit(2)
	}

	adj, err := graphmat.LoadFile(*path)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *path, adj.NRows, len(adj.Entries))
	cfg := graphmat.Config{Threads: *threads}
	start := time.Now()

	switch strings.ToLower(*algo) {
	case "pagerank":
		g, err := algorithms.NewPageRankGraph(adj, 0)
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		ranks, stats := algorithms.PageRank(g, algorithms.PageRankOptions{MaxIterations: *iters, Config: cfg})
		report(build, time.Since(start), stats.Iterations)
		printTopFloat(ranks, *top, "rank")
	case "bfs":
		g, err := algorithms.NewBFSGraph(adj, 0)
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		dist, stats := algorithms.BFS(g, uint32(*source), cfg)
		report(build, time.Since(start), stats.Iterations)
		reached := 0
		for _, d := range dist {
			if d != algorithms.Unreached {
				reached++
			}
		}
		fmt.Printf("reached %d/%d vertices from %d\n", reached, len(dist), *source)
	case "sssp":
		g, err := algorithms.NewSSSPGraph(adj, 0)
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		dist, stats := algorithms.SSSP(g, uint32(*source), cfg)
		report(build, time.Since(start), stats.Iterations)
		reached, sum := 0, 0.0
		for _, d := range dist {
			if d != algorithms.InfDist {
				reached++
				sum += float64(d)
			}
		}
		fmt.Printf("reached %d/%d vertices from %d; mean distance %.2f\n",
			reached, len(dist), *source, sum/float64(max(reached, 1)))
	case "triangles":
		g, err := algorithms.NewTriangleGraph(adj, 0)
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		count, stats := algorithms.TriangleCount(g, cfg)
		report(build, time.Since(start), stats.Iterations)
		fmt.Printf("triangles: %d\n", count)
	case "cf":
		g, err := algorithms.NewCFGraph(adj, 0)
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		_, stats := algorithms.CF(g, algorithms.CFOptions{Iterations: *iters, Config: cfg})
		report(build, time.Since(start), stats.Iterations)
		fmt.Printf("factorized %d vertices into %d latent dimensions\n", g.NumVertices(), algorithms.LatentDim)
	case "cc":
		g, err := algorithms.NewCCGraph(adj, 0)
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		labels, stats := algorithms.ConnectedComponents(g, cfg)
		report(build, time.Since(start), stats.Iterations)
		comps := map[uint32]int{}
		for _, l := range labels {
			comps[l]++
		}
		fmt.Printf("connected components: %d\n", len(comps))
	case "degrees":
		g, err := graphmat.New[uint32](adj, graphmat.Options{})
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		deg, stats := algorithms.Degrees(g, graphmat.Out, cfg)
		report(build, time.Since(start), stats.Iterations)
		ranks := make([]float64, len(deg))
		for i, d := range deg {
			ranks[i] = float64(d)
		}
		printTopFloat(ranks, *top, "in-degree")
	default:
		fatal("unknown algorithm %q", *algo)
	}
}

func report(build, run time.Duration, iterations int) {
	fmt.Printf("build %.3fs  run %.3fs  supersteps %d\n", build.Seconds(), run.Seconds(), iterations)
}

func printTopFloat(vals []float64, k int, what string) {
	type pair struct {
		v uint32
		x float64
	}
	ps := make([]pair, len(vals))
	for i, x := range vals {
		ps[i] = pair{uint32(i), x}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x > ps[j].x })
	if k > len(ps) {
		k = len(ps)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("  #%d vertex %d: %s %.4f\n", i+1, ps[i].v, what, ps[i].x)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphmat: "+format+"\n", args...)
	os.Exit(1)
}
