// Command graphmat runs one of the library's graph algorithms on a graph
// file, mirroring the workflow of the paper's C++ release (load graph, run
// vertex program, print results and timing). Algorithms are resolved through
// the algorithms registry — the same dispatch table graphmatd serves over
// HTTP — so the CLI and the service can never disagree about what an
// algorithm name means; cf and degrees are CLI-only extras.
//
// Usage:
//
//	graphmat -algorithm sssp -graph road.mtx -source 6
//	graphmat -algorithm pagerank -graph web.bin -iters 20 -top 10
//	graphmat -algorithm pagerank -graph web.bin -iters 200 -progress -timeout 30s
//	graphmat -algorithm triangles -graph social.mtx
//	graphmat -algorithm cf -graph ratings.mtx -iters 10
//	graphmat -algorithm bfs -graph social.mtx -source 0
//	graphmat -algorithm bfs -graph social.mtx -sources 0,17,42
//	graphmat -algorithm components -graph social.mtx
//	graphmat snap inspect [-verify] web.snap
//	graphmat snap convert [-algorithm pagerank] [-partitions N] web.mtx web.snap
//
// The snap subcommands work with GMATSNAP persistence files — the format
// graphmatd's -data-dir checkpoints use. inspect decodes the header and
// section table of a snapshot (with -verify adding the deep payload-CRC
// pass); convert parses a graph file once and writes it as a snapshot, so
// later boots mmap the arrays instead of re-parsing text.
//
// -sources runs one independent single-source query per listed vertex as a
// multi-source block batch: the adjacency sweeps are shared across sources,
// and per-source results are bit-identical to separate -source runs.
//
// Runs are context-aware sessions: -timeout bounds wall time, -progress
// streams per-superstep convergence, and Ctrl-C cancels gracefully, printing
// the partial statistics of the work completed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphmat"
	"graphmat/algorithms"
)

func main() {
	// The snap subcommands have their own flag sets and argument shapes, so
	// they dispatch before the top-level flag.Parse.
	if len(os.Args) > 1 && os.Args[1] == "snap" {
		snapMain(os.Args[2:])
		return
	}
	var (
		algo     = flag.String("algorithm", "", strings.Join(append(algorithms.Names(), "cf", "degrees"), ", "))
		path     = flag.String("graph", "", "graph file (.mtx, .bin, or text edge list)")
		source   = flag.Uint("source", 0, "bfs/sssp/ppr source vertex")
		sources  = flag.String("sources", "", "comma-separated source vertices: one independent run per source, batched as a multi-source block run (batchable algorithms only)")
		iters    = flag.Int("iters", 10, "iterations for pagerank/ppr/hits/cf")
		top      = flag.Int("top", 5, "print the top-k vertices of the result")
		threads  = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		modeName = flag.String("mode", "auto", "SpMV kernel: auto (per-superstep direction optimization), pull, or push")
		jobs     = flag.Int("j", 0, "parallel ingestion workers for loading the graph (0 = GOMAXPROCS, 1 = sequential)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		progress = flag.Bool("progress", false, "print per-superstep progress")
		updates  = flag.String("updates", "", "edge-update stream (NDJSON or '[add|del] src dst [w]' lines) applied through the versioned store before the run")
	)
	flag.Parse()
	if *algo == "" || *path == "" {
		fmt.Fprintln(os.Stderr, "graphmat: -algorithm and -graph are required")
		flag.Usage()
		os.Exit(2)
	}

	// Ctrl-C cancels the run gracefully: the engine stops cooperatively and
	// the partial statistics (and result state) are still reported. Once the
	// context is done the signal registration is released, so a second
	// interrupt kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var obs algorithms.Observer
	if *progress {
		obs = func(info graphmat.IterationInfo) error {
			fmt.Printf("  superstep %3d [%s]: %d active, %d sent, %s\n",
				info.Iteration, info.Mode, info.Active, info.Sent, info.Elapsed.Round(time.Microsecond))
			return nil
		}
	}

	// Validate the mode before paying for the graph load: a typo'd -mode on
	// a multi-gigabyte graph should fail instantly.
	mode, err := graphmat.ParseMode(*modeName)
	if err != nil {
		fatal("%v", err)
	}

	adj, err := graphmat.LoadFileOptions(*path, graphmat.LoadOptions{Parallelism: *jobs})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges\n", *path, adj.NRows, len(adj.Entries))
	cfg := graphmat.Config{Threads: *threads, Mode: mode}
	start := time.Now()

	// -updates rides the versioned store: the batch lands as delta overlays
	// on the built instance — the same path a live graphmatd mutation takes —
	// rather than as a pre-load edit of the input.
	var batch []graphmat.EdgeUpdate
	var master *graphmat.COO[float32]
	if *updates != "" {
		if batch, err = graphmat.LoadUpdatesFile(*updates); err != nil {
			fatal("%v", err)
		}
		master = adj.Clone()
		graphmat.NormalizeAdjacency(master, *jobs)
	}

	name := strings.ToLower(*algo)
	if name == "cc" { // historical CLI name for connected components
		name = "components"
	}
	if *updates != "" && (name == "cf" || name == "degrees") {
		fatal("-updates supports the registry algorithms (%s), not %s", strings.Join(algorithms.Names(), ", "), name)
	}
	var sourceList []uint32
	if *sources != "" {
		if name == "cf" || name == "degrees" {
			fatal("-sources supports the batchable registry algorithms, not %s", name)
		}
		for _, field := range strings.Split(*sources, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(field), 10, 32)
			if err != nil {
				fatal("-sources: %v", err)
			}
			sourceList = append(sourceList, uint32(v))
		}
	}
	switch name {
	case "cf":
		g, err := algorithms.NewCFGraph(adj, 0)
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		_, stats, err := algorithms.CFContext(ctx, g, algorithms.CFOptions{Iterations: *iters, Config: cfg}, obs)
		reportStop(stats, err)
		report(build, time.Since(start), stats.Iterations)
		fmt.Printf("factorized %d vertices into %d latent dimensions\n", g.NumVertices(), algorithms.LatentDim)
		return
	case "degrees":
		g, err := graphmat.New[uint32](adj, graphmat.Options{})
		if err != nil {
			fatal("%v", err)
		}
		build := time.Since(start)
		start = time.Now()
		deg, stats := algorithms.Degrees(g, graphmat.Out, cfg)
		report(build, time.Since(start), stats.Iterations)
		ranks := make([]float64, len(deg))
		for i, d := range deg {
			ranks[i] = float64(d)
		}
		printTopFloat(ranks, *top, "in-degree")
		return
	}

	spec, ok := algorithms.Lookup(name)
	if !ok {
		fatal("unknown algorithm %q (have %s, cf, degrees)", *algo, strings.Join(algorithms.Names(), ", "))
	}
	inst, err := spec.Build(adj, 0)
	if err != nil {
		fatal("%v", err)
	}
	build := time.Since(start)
	if len(batch) > 0 {
		applyStart := time.Now()
		if master, err = graphmat.ApplyToAdjacency(master, batch); err != nil {
			fatal("%v", err)
		}
		res, err := inst.ApplyUpdates(batch, algorithms.NewRawEdgeLookup(master))
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("applied %d updates in %.3fs: epoch %d, +%d -%d ~%d property edges (compacted=%v)\n",
			len(batch), time.Since(applyStart).Seconds(), res.Epoch, res.Inserted, res.Deleted, res.Updated, res.Compacted)
	}
	if len(sourceList) > 0 {
		if !spec.Batchable {
			fatal("%s has no source parameter to batch over; use -source-less invocation", name)
		}
		params := algorithms.Params{Sources: sourceList, Iterations: *iters, Threads: *threads, Mode: mode}
		start = time.Now()
		bres, err := inst.RunBatch(ctx, params, obs)
		reportStop(bres.Stats, err)
		report(build, time.Since(start), bres.Stats.Iterations)
		blocks := (len(bres.Sources) + graphmat.MaxBlockSources - 1) / graphmat.MaxBlockSources
		fmt.Printf("batched %d sources across %d block run(s)\n", len(bres.Sources), blocks)
		for i, src := range bres.Sources {
			fmt.Printf("source %d:\n", src)
			printResult(name, algorithms.Result{Values: bres.Values[i]}, uint(src), *top)
		}
		return
	}
	params := algorithms.Params{Source: uint32(*source), Iterations: *iters, Threads: *threads, Mode: mode}
	start = time.Now()
	res, err := inst.RunContext(ctx, params, nil, obs)
	reportStop(res.Stats, err)
	report(build, time.Since(start), res.Stats.Iterations)
	printResult(name, res, *source, *top)
}

// reportStop handles a run's error: stopped runs (Ctrl-C, -timeout) print
// the typed reason and fall through so the partial stats and result state
// still print; real failures abort.
func reportStop(stats graphmat.Stats, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Printf("run stopped early (%s) — reporting partial results\n", stats.Reason)
		return
	}
	fatal("%v", err)
}

// printResult renders the registry's uniform result shape with the summary
// each algorithm's output is usually read for.
func printResult(name string, res algorithms.Result, source uint, top int) {
	switch name {
	case "bfs":
		reached := 0
		for _, d := range res.Values {
			if d != float64(algorithms.Unreached) {
				reached++
			}
		}
		fmt.Printf("reached %d/%d vertices from %d\n", reached, len(res.Values), source)
	case "sssp":
		reached, sum := 0, 0.0
		for _, d := range res.Values {
			if d != float64(algorithms.InfDist) {
				reached++
				sum += d
			}
		}
		fmt.Printf("reached %d/%d vertices from %d; mean distance %.2f\n",
			reached, len(res.Values), source, sum/float64(max(reached, 1)))
	case "components":
		comps := map[float64]int{}
		for _, l := range res.Values {
			comps[l]++
		}
		fmt.Printf("connected components: %d\n", len(comps))
	case "triangles":
		fmt.Printf("triangles: %d\n", *res.Count)
	case "hits":
		printTopFloat(res.Series["auth"], top, "authority")
		printTopFloat(res.Series["hub"], top, "hub")
	default: // pagerank, ppr: a ranked per-vertex series
		printTopFloat(res.Values, top, "rank")
	}
}

func report(build, run time.Duration, iterations int) {
	fmt.Printf("build %.3fs  run %.3fs  supersteps %d\n", build.Seconds(), run.Seconds(), iterations)
}

func printTopFloat(vals []float64, k int, what string) {
	type pair struct {
		v uint32
		x float64
	}
	ps := make([]pair, len(vals))
	for i, x := range vals {
		ps[i] = pair{uint32(i), x}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x > ps[j].x })
	if k > len(ps) {
		k = len(ps)
	}
	for i := 0; i < k; i++ {
		fmt.Printf("  #%d vertex %d: %s %.4f\n", i+1, ps[i].v, what, ps[i].x)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphmat: "+format+"\n", args...)
	os.Exit(1)
}

// snapMain dispatches the GMATSNAP tooling subcommands.
func snapMain(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "graphmat snap: want a subcommand: inspect or convert")
		os.Exit(2)
	}
	switch args[0] {
	case "inspect":
		snapInspect(args[1:])
	case "convert":
		snapConvert(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "graphmat snap: unknown subcommand %q (want inspect or convert)\n", args[0])
		os.Exit(2)
	}
}

// snapInspect decodes a snapshot's header and section table; -verify adds
// the deep payload-CRC pass over every section.
func snapInspect(args []string) {
	fs := flag.NewFlagSet("graphmat snap inspect", flag.ExitOnError)
	verify := fs.Bool("verify", false, "recompute and check every section's payload CRC")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "graphmat snap inspect: want exactly one snapshot file")
		os.Exit(2)
	}
	sf, err := graphmat.OpenSnap(fs.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer sf.Close()
	info := sf.Info()
	fmt.Printf("%s: GMATSNAP v%d\n", info.Path, info.Version)
	fmt.Printf("  epoch %d  tag %d\n", info.Epoch, info.Tag)
	fmt.Printf("  %d x %d vertices, %d edges\n", info.NRows, info.NCols, info.NEdges)
	fmt.Printf("  %s, %d partition(s)\n", describeDirections(info.Directions), info.Partitions)
	fmt.Printf("  file %d bytes, payload %d bytes, %d section(s)\n", info.FileSize, info.DataBytes, len(info.Sections))
	fmt.Printf("  %-8s %-4s %5s  %10s  %10s  %s\n", "kind", "dir", "part", "offset", "length", "crc")
	for _, s := range info.Sections {
		fmt.Printf("  %-8s %-4s %5d  %10d  %10d  %08x\n", s.Kind, s.Dir, s.Part, s.Offset, s.Length, s.CRC)
	}
	if *verify {
		if err := sf.Verify(); err != nil {
			fatal("verify: %v", err)
		}
		fmt.Println("  verify: all section CRCs match")
	}
}

func describeDirections(dirs uint32) string {
	switch dirs {
	case 0:
		return "raw adjacency image"
	case 1:
		return "directions out"
	case 2:
		return "directions in"
	default:
		return "directions out|in"
	}
}

// snapConvert parses a graph file and writes it back as a GMATSNAP snapshot.
// Without -algorithm the output is a raw adjacency image (the form the
// daemon's master copy persists as); with -algorithm it is that algorithm's
// fully built property graph, mmap-bootable without a rebuild.
func snapConvert(args []string) {
	fs := flag.NewFlagSet("graphmat snap convert", flag.ExitOnError)
	algo := fs.String("algorithm", "", "snapshot this registry algorithm's built property graph (empty = raw adjacency image)")
	partitions := fs.Int("partitions", 0, "matrix partitions for the build (0 = auto); used only with -algorithm")
	jobs := fs.Int("j", 0, "parallel ingestion workers for loading the graph (0 = GOMAXPROCS, 1 = sequential)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "graphmat snap convert: want an input graph file and an output snapshot path")
		os.Exit(2)
	}
	in, out := fs.Arg(0), fs.Arg(1)
	start := time.Now()
	adj, err := graphmat.LoadFileOptions(in, graphmat.LoadOptions{Parallelism: *jobs})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("loaded %s: %d vertices, %d edges in %.3fs\n", in, adj.NRows, len(adj.Entries), time.Since(start).Seconds())

	start = time.Now()
	var img *graphmat.SnapImage
	if *algo == "" {
		// Raw image: the normalized adjacency triples, no built structures.
		graphmat.NormalizeAdjacency(adj, *jobs)
		img = &graphmat.SnapImage{
			NRows:  adj.NRows,
			NCols:  adj.NCols,
			NEdges: uint64(len(adj.Entries)),
			Fwd:    adj.Entries,
		}
	} else {
		spec, ok := algorithms.Lookup(strings.ToLower(*algo))
		if !ok {
			fatal("unknown algorithm %q (have %s)", *algo, strings.Join(algorithms.Names(), ", "))
		}
		inst, err := spec.Build(adj, *partitions)
		if err != nil {
			fatal("%v", err)
		}
		if img, err = inst.SnapImage(0); err != nil {
			fatal("%v", err)
		}
	}
	if err := graphmat.WriteSnap(out, img); err != nil {
		fatal("%v", err)
	}
	st, err := os.Stat(out)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s: %d bytes in %.3fs\n", out, st.Size(), time.Since(start).Seconds())
}
