package graphmat_test

import (
	"context"
	"fmt"
	"testing"

	"graphmat/algorithms"
	"graphmat/internal/gen"
)

// Multi-source benchmarks: the throughput of answering k independent
// single-source queries as one n×k block run versus k scalar runs. These
// are the BENCH_multi.json baseline (make bench-multi). k=1 measures the
// block path's overhead over the scalar kernel; k=8 and k=32 measure the
// SpMV→SpMM amortization — one adjacency sweep serving every
// still-unconverged column. Dataset size follows GRAPHMAT_BENCH_SHIFT like
// the other benchmarks (default -3 → RMAT scale 11, edge factor 16).

// multiBenchSources picks k deterministic non-isolated sources.
func multiBenchSources(b *testing.B, outDeg func(uint32) uint32, n uint32, k int) []uint32 {
	b.Helper()
	sources := make([]uint32, 0, k)
	for v := uint32(0); v < n && len(sources) < k; v += n / uint32(k) {
		for u := v; u < n; u++ {
			if outDeg(u) > 0 {
				sources = append(sources, u)
				break
			}
		}
	}
	if len(sources) < k {
		b.Fatalf("found only %d non-isolated sources", len(sources))
	}
	return sources
}

func BenchmarkBatchBFS(b *testing.B) {
	scale := 14 + benchShift()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831})
	g, err := algorithms.NewBFSGraph(adj, 0)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, k := range []int{1, 8, 32} {
		sources := multiBenchSources(b, g.OutDegree, g.NumVertices(), k)
		b.Run(fmt.Sprintf("k_%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.RunBFSBatch(ctx, g, sources); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/source")
		})
	}
}

func BenchmarkBatchPPR(b *testing.B) {
	scale := 14 + benchShift()
	adj := gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 20150831})
	g, err := algorithms.NewPersonalizedPageRankGraph(adj, 0)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, k := range []int{1, 8, 32} {
		sources := multiBenchSources(b, g.OutDegree, g.NumVertices(), k)
		b.Run(fmt.Sprintf("k_%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.RunPersonalizedPageRankBatch(ctx, g, sources,
					algorithms.WithIterations(10)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/source")
		})
	}
}
