package datagen_test

import (
	"testing"

	"graphmat"
	"graphmat/datagen"
)

func sameTriples(a, b *graphmat.COO[float32]) bool {
	if a.NRows != b.NRows || a.NCols != b.NCols || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}

// TestRMATDeterministic checks that generation is a pure function of the
// seed — the property every reproduction experiment and the server's cache
// key rely on.
func TestRMATDeterministic(t *testing.T) {
	opt := datagen.RMATOptions{Scale: 8, EdgeFactor: 8, Seed: 7, MaxWeight: 10}
	a := datagen.RMAT(opt)
	b := datagen.RMAT(opt)
	if !sameTriples(a, b) {
		t.Fatal("same seed produced different graphs")
	}
	opt.Seed = 8
	if sameTriples(a, datagen.RMAT(opt)) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATWellFormed(t *testing.T) {
	const scale, ef = 9, 4
	adj := datagen.RMAT(datagen.RMATOptions{Scale: scale, EdgeFactor: ef, Seed: 3, MaxWeight: 5})
	n := uint32(1) << scale
	if adj.NRows != n || adj.NCols != n {
		t.Fatalf("dims %dx%d, want %dx%d", adj.NRows, adj.NCols, n, n)
	}
	if got, want := len(adj.Entries), int(n)*ef; got != want {
		t.Fatalf("%d edges, want %d", got, want)
	}
	if err := adj.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range adj.Entries {
		if e.Row >= n || e.Col >= n {
			t.Fatalf("edge (%d,%d) out of range", e.Row, e.Col)
		}
		if e.Val < 1 || e.Val > 5 {
			t.Fatalf("weight %v outside [1,5]", e.Val)
		}
	}
}

// TestRMATParameterSets checks the paper's three quadrant-probability
// presets are wired through.
func TestRMATParameterSets(t *testing.T) {
	if datagen.Graph500.A != 0.57 || datagen.Graph500.B != 0.19 || datagen.Graph500.C != 0.19 {
		t.Fatalf("Graph500 = %+v", datagen.Graph500)
	}
	if datagen.Triangle.A != 0.45 || datagen.Triangle.B != 0.15 {
		t.Fatalf("Triangle = %+v", datagen.Triangle)
	}
	if datagen.SSSP24.A != 0.50 || datagen.SSSP24.B != 0.10 {
		t.Fatalf("SSSP24 = %+v", datagen.SSSP24)
	}
	a := datagen.RMAT(datagen.RMATOptions{Scale: 7, EdgeFactor: 4, Seed: 1, Params: datagen.Graph500})
	b := datagen.RMAT(datagen.RMATOptions{Scale: 7, EdgeFactor: 4, Seed: 1, Params: datagen.Triangle})
	if sameTriples(a, b) {
		t.Fatal("parameter set has no effect on generation")
	}
}

func TestGridDeterministicAndWellFormed(t *testing.T) {
	const w, h = 12, 9
	opt := datagen.GridOptions{Width: w, Height: h, Seed: 4}
	a := datagen.Grid(opt)
	if !sameTriples(a, datagen.Grid(opt)) {
		t.Fatal("same seed produced different grids")
	}
	// A w x h 4-neighbor grid has h*(w-1) horizontal + w*(h-1) vertical
	// undirected edges, each stored in both directions.
	want := 2 * (h*(w-1) + w*(h-1))
	if len(a.Entries) != want {
		t.Fatalf("%d edges, want %d", len(a.Entries), want)
	}
	if a.NRows != w*h {
		t.Fatalf("vertices %d, want %d", a.NRows, w*h)
	}
	for _, e := range a.Entries {
		if e.Val < 1 || e.Val > 10 {
			t.Fatalf("weight %v outside default [1,10]", e.Val)
		}
		// 4-neighbor edges connect horizontal or vertical neighbors only.
		dr := int64(e.Row) - int64(e.Col)
		if dr < 0 {
			dr = -dr
		}
		if dr != 1 && dr != w {
			t.Fatalf("edge (%d,%d) is not a grid neighbor", e.Row, e.Col)
		}
	}
}

func TestBipartiteDeterministicAndWellFormed(t *testing.T) {
	opt := datagen.BipartiteOptions{Users: 100, Items: 30, Ratings: 500, Seed: 11}
	a := datagen.Bipartite(opt)
	if !sameTriples(a, datagen.Bipartite(opt)) {
		t.Fatal("same seed produced different ratings graphs")
	}
	if a.NRows != 130 {
		t.Fatalf("vertices %d, want 130", a.NRows)
	}
	if len(a.Entries) != 500 {
		t.Fatalf("%d ratings, want 500", len(a.Entries))
	}
	for _, e := range a.Entries {
		if e.Row >= 100 {
			t.Fatalf("rating source %d is not a user", e.Row)
		}
		if e.Col < 100 || e.Col >= 130 {
			t.Fatalf("rating target %d is not an item", e.Col)
		}
		if e.Val < 1 || e.Val > 5 {
			t.Fatalf("rating %v outside the 1..5 scale", e.Val)
		}
	}
}
