// Package datagen exposes the reproduction's synthetic workload generators
// as public API: Graph500 RMAT graphs with the paper's parameter sets
// (§5.1), power-law bipartite ratings graphs (Netflix-like), and 2-D
// road-style grids. All generators are deterministic in their seed.
package datagen

import (
	"graphmat"
	"graphmat/internal/gen"
)

// RMATParams are the recursive-matrix quadrant probabilities.
type RMATParams = gen.RMATParams

// The paper's three RMAT parameter sets.
var (
	// Graph500 (A=0.57, B=C=0.19) — PageRank, BFS and SSSP graphs.
	Graph500 = gen.RMATGraph500
	// Triangle (A=0.45, B=C=0.15) — triangle-counting graphs.
	Triangle = gen.RMATTriangle
	// SSSP24 (A=0.50, B=C=0.10) — the paper's scale-24 SSSP graph.
	SSSP24 = gen.RMATSSSP24
)

// RMATOptions configures RMAT generation; see gen.RMATOptions.
type RMATOptions = gen.RMATOptions

// RMAT generates a directed Graph500 RMAT graph as adjacency triples.
func RMAT(opt RMATOptions) *graphmat.COO[float32] { return gen.RMAT(opt) }

// BipartiteOptions configures the synthetic ratings generator.
type BipartiteOptions = gen.BipartiteOptions

// Bipartite generates a user→item ratings graph (users are vertices
// [0, Users), items [Users, Users+Items)).
func Bipartite(opt BipartiteOptions) *graphmat.COO[float32] { return gen.Bipartite(opt) }

// GridOptions configures the road-style grid generator.
type GridOptions = gen.GridOptions

// Grid generates a bidirectional weighted 2-D grid.
func Grid(opt GridOptions) *graphmat.COO[float32] { return gen.Grid(opt) }
