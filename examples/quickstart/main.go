// Quickstart: the single-source shortest path program from the paper's
// appendix, run on the worked example of Figure 3.
//
// It shows the full GraphMat workflow: define a vertex program (SendMessage,
// ProcessMessage, Reduce, Apply), build a graph, seed the source, run to
// convergence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"graphmat"
)

// sssp is the program from the appendix: all four type parameters are the
// distance type.
type sssp struct{}

// SendMessage: read the vertex property and produce the message.
func (sssp) SendMessage(_ graphmat.VertexID, prop float32) (float32, bool) {
	return prop, true
}

// ProcessMessage: message + edge weight.
func (sssp) ProcessMessage(msg float32, weight float32, _ float32) float32 {
	return msg + weight
}

// Reduce: keep the minimum.
func (sssp) Reduce(a, b float32) float32 { return min(a, b) }

// Apply: adopt an improvement and stay active.
func (sssp) Apply(reduced float32, _ graphmat.VertexID, prop *float32) bool {
	if reduced < *prop {
		*prop = reduced
		return true
	}
	return false
}

// Direction: traverse out-edges only (order = OUT_EDGES in the C++).
func (sssp) Direction() graphmat.Direction { return graphmat.Out }

func main() {
	// The Figure 3 graph: vertices A..E, weighted directed edges.
	edges := graphmat.NewCOO[float32](5)
	edges.Add(0, 1, 1) // A->B
	edges.Add(0, 2, 3) // A->C
	edges.Add(0, 3, 2) // A->D
	edges.Add(1, 2, 1) // B->C
	edges.Add(2, 3, 2) // C->D
	edges.Add(3, 4, 2) // D->E
	edges.Add(4, 0, 4) // E->A

	g, err := graphmat.New[float32](edges, graphmat.Options{})
	if err != nil {
		panic(err)
	}

	// Distances start at infinity; the source (A) is 0 and active.
	g.SetAllProps(math.MaxFloat32)
	g.SetProp(0, 0)
	g.SetActive(0)

	stats, _ := graphmat.Run(g, sssp{}, graphmat.Config{}) // contextless Run cannot fail

	fmt.Printf("converged after %d supersteps, %d edges processed\n",
		stats.Iterations, stats.EdgesProcessed)
	names := []string{"A", "B", "C", "D", "E"}
	for v, name := range names {
		fmt.Printf("  shortest distance A -> %s = %g\n", name, g.Prop(uint32(v)))
	}
	// Expected (Figure 3d): A=0 B=1 C=2 D=2 E=4.
}
