// Recommender: collaborative filtering on a synthetic Netflix-style ratings
// graph (the paper's §3-III workload). Factorizes the bipartite ratings
// matrix with gradient descent and uses the latent factors to predict
// ratings and recommend unseen items for a user.
//
//	go run ./examples/recommender [-users 20000] [-items 500] [-iters 15]
package main

import (
	"flag"
	"fmt"
	"math"
	"sort"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/datagen"
)

func main() {
	users := flag.Uint("users", 20000, "number of users")
	items := flag.Uint("items", 500, "number of items")
	ratings := flag.Int("ratings", 300000, "number of ratings")
	iters := flag.Int("iters", 15, "gradient-descent iterations")
	flag.Parse()

	fmt.Printf("generating %d ratings from %d users over %d items (Zipf item popularity)\n",
		*ratings, *users, *items)
	raw := datagen.Bipartite(datagen.BipartiteOptions{
		Users: uint32(*users), Items: uint32(*items), Ratings: *ratings, Seed: 7,
	})
	// Keep a copy of the ratings to evaluate training error later (the CF
	// graph builder consumes its input).
	held := raw.Clone()
	held.SortRowMajor()
	held.DedupKeepFirst()

	start := time.Now()
	g, err := algorithms.NewCFGraph(raw, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("built bipartite graph: %d vertices, %d directed rating edges (%.2fs)\n",
		g.NumVertices(), g.NumEdges(), time.Since(start).Seconds())

	start = time.Now()
	factors, stats := algorithms.CF(g, algorithms.CFOptions{
		Iterations: *iters, Gamma: 0.002, Lambda: 0.05, InitSeed: 1,
		Config: graphmat.Config{},
	})
	el := time.Since(start)
	fmt.Printf("factorized into %d latent dimensions in %.3fs (%.2fms/iteration, %d sweeps)\n",
		algorithms.LatentDim, el.Seconds(), el.Seconds()*1e3/float64(stats.Iterations), stats.Iterations)

	predict := func(user, item uint32) float64 {
		var dot float64
		pu, pv := factors[user], factors[item]
		for k := 0; k < algorithms.LatentDim; k++ {
			dot += float64(pu[k]) * float64(pv[k])
		}
		return dot
	}

	// Training error over the observed ratings.
	var se float64
	for _, e := range held.Entries {
		d := float64(e.Val) - predict(e.Row, e.Col)
		se += d * d
	}
	fmt.Printf("training RMSE: %.4f over %d ratings\n",
		rmse(se, len(held.Entries)), len(held.Entries))

	// Recommend: pick the most active user and score items they have not
	// rated.
	rated := map[uint32]map[uint32]bool{}
	for _, e := range held.Entries {
		if rated[e.Row] == nil {
			rated[e.Row] = map[uint32]bool{}
		}
		rated[e.Row][e.Col] = true
	}
	var heavyUser uint32
	for u, m := range rated {
		if len(m) > len(rated[heavyUser]) {
			heavyUser = u
		}
	}
	type rec struct {
		item  uint32
		score float64
	}
	var recs []rec
	for it := uint32(*users); it < uint32(*users)+uint32(*items); it++ {
		if !rated[heavyUser][it] {
			recs = append(recs, rec{it, predict(heavyUser, it)})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].score > recs[j].score })
	fmt.Printf("top recommendations for user %d (%d items already rated):\n",
		heavyUser, len(rated[heavyUser]))
	for i := 0; i < 5 && i < len(recs); i++ {
		fmt.Printf("  item %-6d predicted rating %.2f\n", recs[i].item-uint32(*users), recs[i].score)
	}
}

func rmse(se float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(se / float64(n))
}
