// Multisource: many independent single-source queries answered in one
// multi-source block run. GraphMat's SpMV becomes an SpMM over an n×k
// frontier block (k ≤ graphmat.MaxBlockSources), so up to 64 BFS frontiers
// or PPR personalization vectors share every adjacency sweep — the batching
// the service's /v1 run endpoint uses to coalesce concurrent requests.
// Per-source results are bit-identical to running each source alone; the
// batch is purely a throughput knob.
//
//	go run ./examples/multisource [-scale 16] [-k 32]
package main

import (
	"context"
	"fmt"
	"time"

	"graphmat/algorithms"
	"graphmat/datagen"
)

func main() {
	scale := 16
	k := 32

	fmt.Printf("building an RMAT scale-%d graph (edge factor 16)\n", scale)
	adj := datagen.RMAT(datagen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 7})
	ctx := context.Background()

	bg, err := algorithms.NewBFSGraph(adj, 0)
	if err != nil {
		panic(err)
	}

	// Spread the sources across the vertex range deterministically, skipping
	// isolated vertices (RMAT leaves some untouched).
	n := adj.NRows
	sources := make([]uint32, 0, k)
	for v := uint32(0); v < n && len(sources) < k; v += n / uint32(k) {
		for u := v; u < n; u++ {
			if bg.OutDegree(u) > 0 {
				sources = append(sources, u)
				break
			}
		}
	}
	k = len(sources)

	// --- BFS: k frontiers advanced together ------------------------------

	start := time.Now()
	for _, src := range sources {
		if _, _, err := algorithms.RunBFS(ctx, bg, src); err != nil {
			panic(err)
		}
	}
	seq := time.Since(start)

	start = time.Now()
	dists, stats, err := algorithms.RunBFSBatch(ctx, bg, sources)
	if err != nil {
		panic(err)
	}
	batched := time.Since(start)

	fmt.Printf("\nBFS from %d sources:\n", k)
	fmt.Printf("  sequential: %.3fs   batched: %.3fs (%.1fx, %d supersteps)\n",
		seq.Seconds(), batched.Seconds(), seq.Seconds()/batched.Seconds(), stats.Iterations)
	for _, i := range []int{0, k / 2, k - 1} {
		reached := 0
		for _, d := range dists[i] {
			if d != algorithms.Unreached {
				reached++
			}
		}
		fmt.Printf("  source %6d reached %d/%d vertices\n", sources[i], reached, n)
	}

	// --- Personalized PageRank: k personalization vectors ----------------
	pg, err := algorithms.NewPersonalizedPageRankGraph(adj, 0)
	if err != nil {
		panic(err)
	}

	start = time.Now()
	for _, src := range sources {
		if _, _, err := algorithms.RunPersonalizedPageRank(ctx, pg, []uint32{src}, algorithms.WithIterations(10)); err != nil {
			panic(err)
		}
	}
	seq = time.Since(start)

	start = time.Now()
	ranks, pstats, err := algorithms.RunPersonalizedPageRankBatch(ctx, pg, sources, algorithms.WithIterations(10))
	if err != nil {
		panic(err)
	}
	batched = time.Since(start)

	fmt.Printf("\npersonalized PageRank from %d sources (10 iterations):\n", k)
	fmt.Printf("  sequential: %.3fs   batched: %.3fs (%.1fx, %d supersteps)\n",
		seq.Seconds(), batched.Seconds(), seq.Seconds()/batched.Seconds(), pstats.Iterations)

	// Each column is that source's own ranking: its neighborhood dominates.
	for _, i := range []int{0, k - 1} {
		best, bestR := uint32(0), 0.0
		for v, r := range ranks[i] {
			if r > bestR {
				best, bestR = uint32(v), r
			}
		}
		fmt.Printf("  source %6d: top vertex %d (rank %.4f)\n", sources[i], best, bestR)
	}
}
