// Roadnetwork: single-source shortest paths on a road-style grid (the
// paper's §3-V workload and its USA-road SSSP experiment). Demonstrates the
// regime where SSSP runs for hundreds of low-work supersteps — the paper's
// motivating case for GraphMat's small per-iteration overhead.
//
//	go run ./examples/roadnetwork [-width 400] [-height 300]
package main

import (
	"flag"
	"fmt"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/datagen"
)

func main() {
	width := flag.Uint("width", 400, "grid width (intersections)")
	height := flag.Uint("height", 300, "grid height")
	flag.Parse()

	fmt.Printf("building a %dx%d road grid with segment lengths 1..10\n", *width, *height)
	adj := datagen.Grid(datagen.GridOptions{
		Width: uint32(*width), Height: uint32(*height), MaxWeight: 10, Seed: 3,
	})

	g, err := algorithms.NewSSSPGraph(adj, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("road network: %d intersections, %d directed segments\n",
		g.NumVertices(), g.NumEdges())

	// Route from the top-left corner.
	src := uint32(0)
	start := time.Now()
	dist, stats := algorithms.SSSP(g, src, graphmat.Config{})
	el := time.Since(start)

	fmt.Printf("solved in %.3fs over %d supersteps (%.1fus/superstep) — the high-diameter\n",
		el.Seconds(), stats.Iterations, el.Seconds()*1e6/float64(stats.Iterations))
	fmt.Println("many-iterations regime the paper highlights for road networks (Fig 4e)")

	// Sample travel times across the map.
	at := func(x, y uint32) float32 { return dist[y*uint32(*width)+x] }
	fmt.Printf("travel cost from NW corner:\n")
	fmt.Printf("  to NE corner: %.0f\n", at(uint32(*width)-1, 0))
	fmt.Printf("  to SW corner: %.0f\n", at(0, uint32(*height)-1))
	fmt.Printf("  to SE corner: %.0f\n", at(uint32(*width)-1, uint32(*height)-1))
	fmt.Printf("  to center:    %.0f\n", at(uint32(*width)/2, uint32(*height)/2))

	// The farthest reachable intersection (graph eccentricity from src).
	far, farD := src, float32(0)
	for v, d := range dist {
		if d != algorithms.InfDist && d > farD {
			far, farD = uint32(v), d
		}
	}
	fmt.Printf("farthest intersection: %d at cost %.0f\n", far, farD)
}
