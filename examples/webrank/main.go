// Webrank: PageRank over a synthetic web-crawl graph (the paper's §3-I
// workload). Generates a Graph500 RMAT graph with the paper's skew
// parameters, ranks it, and prints the top pages plus rank distribution
// statistics.
//
//	go run ./examples/webrank [-scale 16] [-iters 20]
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/datagen"
)

func main() {
	scale := flag.Int("scale", 15, "web graph has 2^scale pages")
	iters := flag.Int("iters", 20, "PageRank iterations")
	flag.Parse()

	fmt.Printf("crawling a synthetic web: RMAT scale %d (A=0.57, B=C=0.19), edge factor 16\n", *scale)
	adj := datagen.RMAT(datagen.RMATOptions{
		Scale: *scale, EdgeFactor: 16, Params: datagen.Graph500, Seed: 42,
	})

	start := time.Now()
	g, err := algorithms.NewPageRankGraph(adj, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("built graph: %d pages, %d links (%.2fs)\n",
		g.NumVertices(), g.NumEdges(), time.Since(start).Seconds())

	start = time.Now()
	ranks, stats := algorithms.PageRank(g, algorithms.PageRankOptions{
		MaxIterations: *iters,
		Config:        graphmat.Config{},
	})
	el := time.Since(start)
	fmt.Printf("ranked in %.3fs (%.2fms/iteration, %d iterations)\n",
		el.Seconds(), el.Seconds()*1e3/float64(stats.Iterations), stats.Iterations)

	type page struct {
		id   uint32
		rank float64
	}
	pages := make([]page, len(ranks))
	for i, r := range ranks {
		pages[i] = page{uint32(i), r}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rank > pages[j].rank })

	fmt.Println("top 10 pages:")
	for i := 0; i < 10 && i < len(pages); i++ {
		fmt.Printf("  %2d. page %-8d rank %8.2f  in-degree %d\n",
			i+1, pages[i].id, pages[i].rank, g.InDegree(pages[i].id))
	}

	// Rank concentration: what share of total rank the top 1% holds —
	// the power-law signature of web graphs.
	total, top1 := 0.0, 0.0
	for i, p := range pages {
		total += p.rank
		if i < len(pages)/100 {
			top1 += p.rank
		}
	}
	fmt.Printf("rank concentration: top 1%% of pages hold %.1f%% of total rank\n", 100*top1/total)
}
