// Example liveupdate demonstrates the versioned mutable graph store: a
// PageRank service absorbing edge updates without ever rebuilding from
// scratch. A small web graph is built once, queried, mutated through batched
// inserts and deletes (each batch publishing a new epoch-numbered snapshot),
// and queried again — with a query pinned to an old snapshot running happily
// while the graph changes under it, and a final forced compaction folding
// the accumulated deltas back into the base structures.
//
//	go run ./examples/liveupdate
package main

import (
	"fmt"
	"log"

	"graphmat"
	"graphmat/algorithms"
)

func main() {
	// A tiny web graph: a ring of sites with a few cross links. Vertex 0
	// starts life as the hub everyone links to.
	const n = 64
	adj := graphmat.NewCOO[float32](n)
	for v := uint32(1); v < n; v++ {
		adj.Add(v, 0, 1)       // everyone links the hub
		adj.Add(v, (v+1)%n, 1) // ring
	}
	adj.Add(0, 1, 1)

	// The registry's build path gives us a versioned store under the hood.
	spec, _ := algorithms.Lookup("pagerank")
	inst, err := spec.Build(adj.Clone(), 0)
	if err != nil {
		log.Fatal(err)
	}
	// The raw master copy: updates are translated against it (the serving
	// layer keeps exactly this).
	master := adj
	graphmat.NormalizeAdjacency(master, 0)

	top := func(r algorithms.Result) uint32 {
		best := uint32(0)
		for v, x := range r.Values {
			if x > r.Values[best] {
				best = uint32(v)
			}
		}
		return best
	}

	res, err := inst.Run(algorithms.Params{Iterations: 20}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: top page is %d (rank %.3f), %d edges\n",
		res.Epoch, top(res), res.Values[top(res)], inst.NumEdges())

	// The crowd moves on: batches strip the hub's inlinks and point them at
	// site 42. Each batch is one POST /graphs/{name}/edges in graphmatd.
	for b := 0; b < 4; b++ {
		var batch []algorithms.EdgeUpdate
		for v := uint32(1 + 16*b); v < uint32(16*(b+1)+1) && v < n; v++ {
			if v != 42 {
				batch = append(batch,
					algorithms.EdgeUpdate{Src: v, Dst: 0, Del: true},
					algorithms.EdgeUpdate{Src: v, Dst: 42, Val: 1})
			}
		}
		if master, err = graphmat.ApplyToAdjacency(master, batch); err != nil {
			log.Fatal(err)
		}
		upd, err := inst.ApplyUpdates(batch, algorithms.NewRawEdgeLookup(master))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: epoch %d, +%d -%d property edges, overlay %d entries, compacted=%v\n",
			b+1, upd.Epoch, upd.Inserted, upd.Deleted, inst.StoreStats().OverlayNNZ, upd.Compacted)
	}

	res, err = inst.Run(algorithms.Params{Iterations: 20}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: top page is now %d (rank %.3f), %d edges\n",
		res.Epoch, top(res), res.Values[top(res)], inst.NumEdges())

	st := inst.StoreStats()
	fmt.Printf("store: %d batches, %d compactions, overlay %d entries over %d base edges\n",
		st.Batches, st.Compactions, st.OverlayNNZ, st.BaseEdges)

	// Snapshot pinning directly on a store: a long analytics run keeps its
	// epoch while updates land.
	store, err := algorithms.NewPageRankStore(master.Clone(), 0)
	if err != nil {
		log.Fatal(err)
	}
	pinned := store.Acquire()
	if _, err := store.ApplyEdges([]graphmat.EdgeUpdate{{Src: 42, Dst: 0, Del: true}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned snapshot still at epoch %d with %d edges; store moved to epoch %d with %d edges\n",
		pinned.Epoch(), pinned.Graph().NumEdges(), store.Epoch(), store.NumEdges())
	pinned.Release()
	store.Compact()
	fmt.Printf("after compaction: epoch %d unchanged, overlay %d entries\n",
		store.Epoch(), store.Stats().OverlayNNZ)
}
