// Progress: the context-aware session API. PageRank runs on a synthetic
// RMAT graph with a per-superstep observer streaming convergence progress,
// under a context that cancels on Ctrl-C and a hard wall-clock budget.
//
//	go run ./examples/progress
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/internal/gen"
)

func main() {
	adj := gen.RMAT(gen.RMATOptions{Scale: 14, EdgeFactor: 16, Seed: 42})
	g, err := algorithms.NewPageRankGraph(adj, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pagerank on %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Ctrl-C cancels the run; the budget bounds it even without a signal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()

	opt := algorithms.PageRankOptions{MaxIterations: 50, Tolerance: 1e-9}
	ws := graphmat.NewWorkspace[float64, float64](int(g.NumVertices()), graphmat.Bitvector)
	ranks, stats, err := algorithms.PageRankContext(ctx, g, opt, ws,
		func(info graphmat.IterationInfo) error {
			// NextActive is the number of vertices whose rank still moved
			// more than Tolerance — the convergence residual proxy.
			fmt.Printf("  superstep %2d: %7d unconverged, %s\n",
				info.Iteration, info.NextActive, info.Elapsed.Round(time.Microsecond))
			return nil
		})
	switch {
	case err == nil:
		fmt.Printf("finished: %s after %d supersteps\n", stats.Reason, stats.Iterations)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		fmt.Printf("stopped early (%s) with partial ranks after %d supersteps\n",
			stats.Reason, stats.Iterations)
	default:
		panic(err)
	}
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	fmt.Printf("rank mass %.4f over %d vertices\n", sum, len(ranks))
}
