// Socialnetwork: the paper's social-graph workloads (§3-II, §3-IV) on one
// synthetic Facebook-style interaction graph — triangle counting for the
// clustering structure, BFS for degrees of separation, and connected
// components for community reach.
//
//	go run ./examples/socialnetwork [-scale 15]
package main

import (
	"flag"
	"fmt"
	"time"

	"graphmat"
	"graphmat/algorithms"
	"graphmat/datagen"
)

func main() {
	scale := flag.Int("scale", 14, "social graph has 2^scale members")
	flag.Parse()

	fmt.Printf("generating a synthetic social network: RMAT scale %d (A=0.45, B=C=0.15)\n", *scale)
	adj := datagen.RMAT(datagen.RMATOptions{
		Scale: *scale, EdgeFactor: 16, Params: datagen.Triangle, Seed: 9,
	})

	// --- Triangle counting ---
	start := time.Now()
	tg, err := algorithms.NewTriangleGraph(adj.Clone(), 0)
	if err != nil {
		panic(err)
	}
	triangles, _ := algorithms.TriangleCount(tg, graphmat.Config{})
	edges := tg.NumEdges() // undirected friendships after preprocessing
	fmt.Printf("triangles: %d across %d friendships (%.3fs)\n",
		triangles, edges, time.Since(start).Seconds())
	// Global clustering coefficient = 3*triangles / open+closed wedges.
	var wedges int64
	for v := uint32(0); v < tg.NumVertices(); v++ {
		d := int64(tg.OutDegree(v) + tg.InDegree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges > 0 {
		fmt.Printf("global clustering coefficient: %.4f\n", 3*float64(triangles)/float64(wedges))
	}

	// --- Degrees of separation (BFS) ---
	start = time.Now()
	bg, err := algorithms.NewBFSGraph(adj.Clone(), 0)
	if err != nil {
		panic(err)
	}
	// Start from the best-connected member.
	var root, best uint32
	for v := uint32(0); v < bg.NumVertices(); v++ {
		if d := bg.OutDegree(v); d > best {
			root, best = v, d
		}
	}
	dist, stats := algorithms.BFS(bg, root, graphmat.Config{})
	hist := map[uint32]int{}
	reached := 0
	for _, d := range dist {
		if d != algorithms.Unreached {
			hist[d]++
			reached++
		}
	}
	fmt.Printf("BFS from member %d (degree %d): reached %d/%d members in %d supersteps (%.3fs)\n",
		root, best, reached, len(dist), stats.Iterations, time.Since(start).Seconds())
	for d := uint32(0); int(d) < len(hist); d++ {
		if hist[d] > 0 {
			fmt.Printf("  %d hops: %d members\n", d, hist[d])
		}
	}

	// --- Connected components ---
	start = time.Now()
	cg, err := algorithms.NewCCGraph(adj.Clone(), 0)
	if err != nil {
		panic(err)
	}
	labels, _ := algorithms.ConnectedComponents(cg, graphmat.Config{})
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("communities: %d connected components; the giant component has %d members (%.1f%%) (%.3fs)\n",
		len(sizes), largest, 100*float64(largest)/float64(len(labels)), time.Since(start).Seconds())
}
