// Benchmarks regenerating each table and figure of the paper's evaluation
// (§5) as testing.B targets. Dataset sizes default to 2^-3 of the harness
// defaults so `go test -bench=.` completes quickly; set
// GRAPHMAT_BENCH_SHIFT to change (0 = the EXPERIMENTS.md scale, positive
// approaches paper scale). The cmd/experiments binary runs the same
// experiments with full reporting.
package graphmat_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"

	"graphmat/internal/bench"
	"graphmat/internal/counters"
	"graphmat/internal/gen"
	"graphmat/internal/graph"
	"graphmat/internal/sparse"
)

func benchShift() int {
	if s := os.Getenv("GRAPHMAT_BENCH_SHIFT"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return -3
}

// benchFig4 runs one Figure 4 subplot as dataset/framework sub-benchmarks.
func benchFig4(b *testing.B, algo string, runners func(data *sparse.COO[float32]) []bench.Runner) {
	shift := benchShift()
	for _, d := range bench.Datasets() {
		if !containsAlgo(d.Algorithms, algo) {
			continue
		}
		data := d.Generate(shift)
		for _, r := range runners(data) {
			r := r
			b.Run(fmt.Sprintf("%s/%s", sanitize(d.Name), sanitize(r.Framework)), func(b *testing.B) {
				r.Prepare()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := r.Execute()
					if res.Err != nil {
						b.Skipf("run failed (expected for CombBLAS TC OOM): %v", res.Err)
					}
				}
			})
		}
	}
}

func containsAlgo(list, algo string) bool {
	for _, a := range splitComma(list) {
		if a == algo {
			return true
		}
	}
	return false
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ' ', '(', ')', '*', '/':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// BenchmarkTable1Datasets measures stand-in generation for the Table 1
// inventory.
func BenchmarkTable1Datasets(b *testing.B) {
	shift := benchShift()
	for _, d := range bench.Datasets() {
		b.Run(sanitize(d.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := d.Generate(shift)
				if g.NNZ() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkFig4aPageRank regenerates Figure 4a (PageRank time/iteration;
// divide ns/op by the 10 iterations).
func BenchmarkFig4aPageRank(b *testing.B) {
	benchFig4(b, "PR", func(data *sparse.COO[float32]) []bench.Runner {
		return bench.PageRankRunners(data, 0, 10)
	})
}

// BenchmarkFig4bBFS regenerates Figure 4b (BFS total time).
func BenchmarkFig4bBFS(b *testing.B) {
	benchFig4(b, "BFS", func(data *sparse.COO[float32]) []bench.Runner {
		return bench.BFSRunners(data, 0)
	})
}

// BenchmarkFig4cTriangleCounting regenerates Figure 4c (TC total time;
// CombBLAS runs the masked SpGEMM with its memory cap).
func BenchmarkFig4cTriangleCounting(b *testing.B) {
	benchFig4(b, "TC", func(data *sparse.COO[float32]) []bench.Runner {
		return bench.TCRunners(data, 0, 0)
	})
}

// BenchmarkFig4dCollaborativeFiltering regenerates Figure 4d (CF
// time/iteration; divide ns/op by the 5 iterations).
func BenchmarkFig4dCollaborativeFiltering(b *testing.B) {
	benchFig4(b, "CF", func(data *sparse.COO[float32]) []bench.Runner {
		return bench.CFRunners(data, 0, 5)
	})
}

// BenchmarkFig4eSSSP regenerates Figure 4e (SSSP total time).
func BenchmarkFig4eSSSP(b *testing.B) {
	benchFig4(b, "SSSP", func(data *sparse.COO[float32]) []bench.Runner {
		return bench.SSSPRunners(data, 0, 8)
	})
}

// BenchmarkTable2Speedups exercises the Table 2 computation: GraphMat vs the
// three frameworks on one representative dataset per algorithm (the full
// table derives from all Figure 4 cells via cmd/experiments).
func BenchmarkTable2Speedups(b *testing.B) {
	shift := benchShift()
	d, _ := bench.DatasetByName("Facebook")
	data := d.Generate(shift)
	for _, r := range bench.PageRankRunners(data, 0, 10) {
		if r.Framework == bench.FwNative {
			continue
		}
		r := r
		b.Run(sanitize(r.Framework), func(b *testing.B) {
			r.Prepare()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Execute()
			}
		})
	}
}

// BenchmarkTable3VsNative exercises the Table 3 comparison: GraphMat vs the
// hand-optimized native kernels on one dataset per algorithm.
func BenchmarkTable3VsNative(b *testing.B) {
	shift := benchShift()
	type row struct {
		name    string
		dataset string
		runners func(data *sparse.COO[float32]) []bench.Runner
	}
	rows := []row{
		{"PageRank", "Facebook", func(d *sparse.COO[float32]) []bench.Runner { return bench.PageRankRunners(d, 0, 10) }},
		{"BFS", "Facebook", func(d *sparse.COO[float32]) []bench.Runner { return bench.BFSRunners(d, 0) }},
		{"TriangleCounting", "RMAT Scale 20", func(d *sparse.COO[float32]) []bench.Runner { return bench.TCRunners(d, 0, 0) }},
		{"CF", "Netflix", func(d *sparse.COO[float32]) []bench.Runner { return bench.CFRunners(d, 0, 5) }},
	}
	for _, rw := range rows {
		ds, ok := bench.DatasetByName(rw.dataset)
		if !ok {
			b.Fatalf("dataset %q missing", rw.dataset)
		}
		data := ds.Generate(shift)
		for _, r := range rw.runners(data) {
			if r.Framework != bench.FwGraphMat && r.Framework != bench.FwNative {
				continue
			}
			r := r
			b.Run(rw.name+"/"+sanitize(r.Framework), func(b *testing.B) {
				r.Prepare()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.Execute()
				}
			})
		}
	}
}

// BenchmarkFig5Scalability regenerates Figure 5: GraphMat PageRank and SSSP
// at 1..GOMAXPROCS threads (speedup = ns/op at 1 thread / ns/op at N).
func BenchmarkFig5Scalability(b *testing.B) {
	shift := benchShift()
	fb, _ := bench.DatasetByName("Facebook")
	fl, _ := bench.DatasetByName("Flickr")
	fbData := fb.Generate(shift)
	flData := fl.Generate(shift)
	maxThreads := 0
	for _, th := range []int{1, 2, 4, 8} {
		if maxThreads > 0 && th > maxThreads {
			break
		}
		for _, r := range bench.PageRankRunners(fbData, th, 10) {
			if r.Framework != bench.FwGraphMat {
				continue
			}
			r := r
			b.Run(fmt.Sprintf("PageRank_facebook/threads_%d", th), func(b *testing.B) {
				r.Prepare()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.Execute()
				}
			})
		}
		for _, r := range bench.SSSPRunners(flData, th, 8) {
			if r.Framework != bench.FwGraphMat {
				continue
			}
			r := r
			b.Run(fmt.Sprintf("SSSP_flickr/threads_%d", th), func(b *testing.B) {
				r.Prepare()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.Execute()
				}
			})
		}
	}
}

// BenchmarkFig6Counters regenerates the Figure 6 counter collection: one
// PageRank run per framework with the counter proxies reported as benchmark
// metrics.
func BenchmarkFig6Counters(b *testing.B) {
	shift := benchShift()
	d, _ := bench.DatasetByName("Facebook")
	data := d.Generate(shift)
	var base counters.Set
	for _, r := range bench.PageRankRunners(data, 0, 10) {
		if r.Framework == bench.FwNative {
			continue
		}
		r := r
		b.Run(sanitize(r.Framework), func(b *testing.B) {
			r.Prepare()
			var set counters.Set
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := r.Execute()
				set = res.Set
			}
			b.StopTimer()
			if r.Framework == bench.FwGraphMat {
				base = set
			}
			if base.WorkItems > 0 {
				rr := set.Ratios(base)
				b.ReportMetric(rr[0], "instr_ratio")
				b.ReportMetric(rr[1], "stall_ratio")
			}
		})
	}
}

// BenchmarkFig7Ablation regenerates Figure 7: the five engine
// configurations on PageRank (facebook stand-in). Speedups are the naive
// ns/op divided by each step's ns/op.
func BenchmarkFig7Ablation(b *testing.B) {
	shift := benchShift()
	o := bench.Options{Shift: shift, PRIters: 5}
	steps := bench.Fig7Steps(o)
	for _, s := range steps {
		s := s
		b.Run(sanitize(s.Name), func(b *testing.B) {
			s.Repartition()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunPR()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ingestion benchmarks (recorded in BENCH_ingest.json): the parallel load
// pipeline at 1/4/8 workers. Worker counts beyond GOMAXPROCS still measure
// correctly — they exercise oversubscription, not speedup.

// ingestWorkerCounts is the ladder every ingestion benchmark climbs.
var ingestWorkerCounts = []int{1, 4, 8}

func ingestAdj() *sparse.COO[float32] {
	scale := 16 + benchShift()
	if scale < 10 {
		scale = 10
	}
	return gen.RMAT(gen.RMATOptions{Scale: scale, EdgeFactor: 16, Seed: 11, MaxWeight: 100})
}

// BenchmarkLoadEdgeList measures chunk-parallel text edge-list parsing.
func BenchmarkLoadEdgeList(b *testing.B) {
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, ingestAdj()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, w := range ingestWorkerCounts {
		b.Run(fmt.Sprintf("workers_%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := graph.ParseEdgeList(data, graph.LoadOptions{Parallelism: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadBinary measures sectioned GMATBIN2 decoding.
func BenchmarkLoadBinary(b *testing.B) {
	var buf bytes.Buffer
	if err := graph.WriteBinary2(&buf, ingestAdj(), 64); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, w := range ingestWorkerCounts {
		b.Run(fmt.Sprintf("workers_%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := graph.ParseBinary(data, graph.LoadOptions{Parallelism: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildDCSC measures the scatter-based concurrent partition build
// (sort and dedup excluded — the input is prepared once).
func BenchmarkBuildDCSC(b *testing.B) {
	adj := ingestAdj()
	adj.Transpose()
	adj.SortColMajorParallel(0)
	adj.DedupKeepFirstParallel(0)
	nparts := 64
	for _, w := range ingestWorkerCounts {
		b.Run(fmt.Sprintf("workers_%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parts := sparse.BuildPartitionedDCSCParallel(adj, nparts, w)
				if len(parts) != nparts {
					b.Fatal("bad partition count")
				}
			}
		})
	}
}

// BenchmarkIngestSort measures the parallel stable merge sort feeding the
// build.
func BenchmarkIngestSort(b *testing.B) {
	adj := ingestAdj()
	for _, w := range ingestWorkerCounts {
		b.Run(fmt.Sprintf("workers_%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := adj.Clone()
				b.StartTimer()
				c.SortColMajorParallel(w)
			}
		})
	}
}

// BenchmarkAblationPartitionCount sweeps the 1-D partition count for
// GraphMat PageRank — the design choice behind the paper's §4.5 item 4
// ("many more partitions than number of threads"). Read together with
// BenchmarkFig7Ablation's +parallel/+load-balance steps.
func BenchmarkAblationPartitionCount(b *testing.B) {
	shift := benchShift()
	d, _ := bench.DatasetByName("Facebook")
	data := d.Generate(shift)
	for _, parts := range []int{1, 2, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("partitions_%d", parts), func(b *testing.B) {
			runner := bench.PageRankRunnerWithPartitions(data.Clone(), 0, 5, parts)
			runner.Prepare()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runner.Execute()
			}
		})
	}
}
